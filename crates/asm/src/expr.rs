//! Assembly-time constant expressions.

use std::collections::HashMap;
use std::fmt;

/// An assembly-time expression over numbers and symbols.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A literal constant.
    Num(i64),
    /// A symbol reference (label or `.equ` constant). The special symbol
    /// `"."` is the current instruction's address.
    Sym(String),
    /// A binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary negation.
    Neg(Box<Expr>),
    /// Unary bitwise complement.
    Not(Box<Expr>),
}

/// Binary operators, lowest first in the precedence table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (assembly-time, truncating).
    Div,
    /// Left shift.
    Shl,
    /// Right shift.
    Shr,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
}

/// Expression evaluation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A referenced symbol is not (yet) defined.
    Undefined(String),
    /// Division by zero at assembly time.
    DivByZero,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Undefined(s) => write!(f, "undefined symbol `{s}`"),
            EvalError::DivByZero => write!(f, "division by zero"),
        }
    }
}

impl Expr {
    /// Evaluates against a symbol table; `dot` is the value of `.`.
    pub fn eval(&self, symbols: &HashMap<String, u32>, dot: u32) -> Result<i64, EvalError> {
        match self {
            Expr::Num(n) => Ok(*n),
            Expr::Sym(s) if s == "." => Ok(dot as i64),
            Expr::Sym(s) => {
                symbols.get(s).map(|v| *v as i64).ok_or_else(|| EvalError::Undefined(s.clone()))
            }
            Expr::Neg(e) => Ok(e.eval(symbols, dot)?.wrapping_neg()),
            Expr::Not(e) => Ok(!e.eval(symbols, dot)?),
            Expr::Bin(op, a, b) => {
                let a = a.eval(symbols, dot)?;
                let b = b.eval(symbols, dot)?;
                Ok(match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    BinOp::Div => {
                        if b == 0 {
                            return Err(EvalError::DivByZero);
                        }
                        a.wrapping_div(b)
                    }
                    BinOp::Shl => a.wrapping_shl(b as u32),
                    BinOp::Shr => ((a as u64).wrapping_shr(b as u32)) as i64,
                    BinOp::And => a & b,
                    BinOp::Or => a | b,
                    BinOp::Xor => a ^ b,
                })
            }
        }
    }

    /// True when the expression references no symbols (other than through
    /// already-folded constants).
    pub fn is_const(&self) -> bool {
        match self {
            Expr::Num(_) => true,
            Expr::Sym(_) => false,
            Expr::Neg(e) | Expr::Not(e) => e.is_const(),
            Expr::Bin(_, a, b) => a.is_const() && b.is_const(),
        }
    }
}

/// Parses an expression from `input`.
///
/// Accepts decimal, hex (`0x`), binary (`0b`), octal (`0o`), character
/// (`'c'`) literals, symbols, `.`, parentheses, unary `-`/`~`, and the
/// binary operators `+ - * / << >> & | ^`.
///
/// # Errors
///
/// Returns a message describing the first syntax error.
pub fn parse_expr(input: &str) -> Result<Expr, String> {
    let mut p = ExprParser { s: input.as_bytes(), pos: 0 };
    let e = p.parse_or()?;
    p.skip_ws();
    if p.pos != p.s.len() {
        return Err(format!("trailing characters in expression `{input}`"));
    }
    Ok(e)
}

struct ExprParser<'a> {
    s: &'a [u8],
    pos: usize,
}

impl<'a> ExprParser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.s.len() && (self.s[self.pos] as char).is_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.s.get(self.pos).copied()
    }

    fn eat(&mut self, tok: &str) -> bool {
        self.skip_ws();
        if self.s[self.pos..].starts_with(tok.as_bytes()) {
            self.pos += tok.len();
            true
        } else {
            false
        }
    }

    fn parse_or(&mut self) -> Result<Expr, String> {
        let mut lhs = self.parse_and()?;
        loop {
            if self.eat("|") {
                let rhs = self.parse_and()?;
                lhs = Expr::Bin(BinOp::Or, Box::new(lhs), Box::new(rhs));
            } else if self.eat("^") {
                let rhs = self.parse_and()?;
                lhs = Expr::Bin(BinOp::Xor, Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn parse_and(&mut self) -> Result<Expr, String> {
        let mut lhs = self.parse_shift()?;
        while self.peek() == Some(b'&') {
            self.pos += 1;
            let rhs = self.parse_shift()?;
            lhs = Expr::Bin(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_shift(&mut self) -> Result<Expr, String> {
        let mut lhs = self.parse_add()?;
        loop {
            if self.eat("<<") {
                let rhs = self.parse_add()?;
                lhs = Expr::Bin(BinOp::Shl, Box::new(lhs), Box::new(rhs));
            } else if self.eat(">>") {
                let rhs = self.parse_add()?;
                lhs = Expr::Bin(BinOp::Shr, Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn parse_add(&mut self) -> Result<Expr, String> {
        let mut lhs = self.parse_mul()?;
        loop {
            match self.peek() {
                Some(b'+') => {
                    self.pos += 1;
                    let rhs = self.parse_mul()?;
                    lhs = Expr::Bin(BinOp::Add, Box::new(lhs), Box::new(rhs));
                }
                Some(b'-') => {
                    self.pos += 1;
                    let rhs = self.parse_mul()?;
                    lhs = Expr::Bin(BinOp::Sub, Box::new(lhs), Box::new(rhs));
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn parse_mul(&mut self) -> Result<Expr, String> {
        let mut lhs = self.parse_unary()?;
        loop {
            match self.peek() {
                Some(b'*') => {
                    self.pos += 1;
                    let rhs = self.parse_unary()?;
                    lhs = Expr::Bin(BinOp::Mul, Box::new(lhs), Box::new(rhs));
                }
                Some(b'/') => {
                    self.pos += 1;
                    let rhs = self.parse_unary()?;
                    lhs = Expr::Bin(BinOp::Div, Box::new(lhs), Box::new(rhs));
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn parse_unary(&mut self) -> Result<Expr, String> {
        match self.peek() {
            Some(b'-') => {
                self.pos += 1;
                Ok(Expr::Neg(Box::new(self.parse_unary()?)))
            }
            Some(b'~') => {
                self.pos += 1;
                Ok(Expr::Not(Box::new(self.parse_unary()?)))
            }
            Some(b'(') => {
                self.pos += 1;
                let e = self.parse_or()?;
                if self.peek() != Some(b')') {
                    return Err("missing `)`".into());
                }
                self.pos += 1;
                Ok(e)
            }
            Some(b'\'') => {
                self.pos += 1;
                let c = self
                    .s
                    .get(self.pos)
                    .copied()
                    .ok_or_else(|| "unterminated char literal".to_string())?;
                let (v, adv) = if c == b'\\' {
                    let esc = self
                        .s
                        .get(self.pos + 1)
                        .copied()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    let v = match esc {
                        b'n' => b'\n',
                        b't' => b'\t',
                        b'r' => b'\r',
                        b'0' => 0,
                        b'\\' => b'\\',
                        b'\'' => b'\'',
                        _ => return Err(format!("unknown escape `\\{}`", esc as char)),
                    };
                    (v, 2)
                } else {
                    (c, 1)
                };
                self.pos += adv;
                if self.s.get(self.pos) != Some(&b'\'') {
                    return Err("unterminated char literal".into());
                }
                self.pos += 1;
                Ok(Expr::Num(v as i64))
            }
            Some(c) if c.is_ascii_digit() => self.parse_number(),
            Some(c) if c == b'_' || c == b'.' || c == b'$' || c.is_ascii_alphabetic() => {
                let start = self.pos;
                while self.pos < self.s.len() {
                    let c = self.s[self.pos];
                    if c == b'_' || c == b'.' || c == b'$' || c == b'@' || c.is_ascii_alphanumeric()
                    {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                let name = std::str::from_utf8(&self.s[start..self.pos]).expect("ascii");
                Ok(Expr::Sym(name.to_string()))
            }
            other => Err(format!("unexpected token {:?} in expression", other.map(|c| c as char))),
        }
    }

    fn parse_number(&mut self) -> Result<Expr, String> {
        let start = self.pos;
        let bytes = self.s;
        let (radix, mut i) =
            if bytes[self.pos..].starts_with(b"0x") || bytes[self.pos..].starts_with(b"0X") {
                (16, self.pos + 2)
            } else if bytes[self.pos..].starts_with(b"0b") || bytes[self.pos..].starts_with(b"0B") {
                (2, self.pos + 2)
            } else if bytes[self.pos..].starts_with(b"0o") {
                (8, self.pos + 2)
            } else {
                (10, self.pos)
            };
        let digits_start = i;
        while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
            i += 1;
        }
        let text: String = std::str::from_utf8(&bytes[digits_start..i])
            .expect("ascii")
            .chars()
            .filter(|c| *c != '_')
            .collect();
        self.pos = i;
        u64::from_str_radix(&text, radix).map(|v| Expr::Num(v as i64)).map_err(|_| {
            format!("bad number literal `{}`", std::str::from_utf8(&bytes[start..i]).unwrap_or("?"))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(s: &str) -> i64 {
        parse_expr(s).unwrap().eval(&HashMap::new(), 0).unwrap()
    }

    #[test]
    fn literals() {
        assert_eq!(ev("42"), 42);
        assert_eq!(ev("0x2a"), 42);
        assert_eq!(ev("0b101"), 5);
        assert_eq!(ev("0o17"), 15);
        assert_eq!(ev("'A'"), 65);
        assert_eq!(ev("'\\n'"), 10);
        assert_eq!(ev("1_000"), 1000);
    }

    #[test]
    fn precedence() {
        assert_eq!(ev("2+3*4"), 14);
        assert_eq!(ev("(2+3)*4"), 20);
        assert_eq!(ev("1<<4|1"), 17);
        assert_eq!(ev("0xff & 0x0f"), 0x0f);
        assert_eq!(ev("-4+10"), 6);
        assert_eq!(ev("~0 & 0xff"), 0xff);
        assert_eq!(ev("100/7"), 14);
        assert_eq!(ev("1 << 2 << 3"), 32);
    }

    #[test]
    fn symbols_and_dot() {
        let mut syms = HashMap::new();
        syms.insert("foo".to_string(), 0x100u32);
        let e = parse_expr("foo+8").unwrap();
        assert_eq!(e.eval(&syms, 0).unwrap(), 0x108);
        assert!(!e.is_const());
        let e = parse_expr(". - 4").unwrap();
        assert_eq!(e.eval(&syms, 0x1000).unwrap(), 0xffc);
        let e = parse_expr("bar").unwrap();
        assert_eq!(e.eval(&syms, 0), Err(EvalError::Undefined("bar".into())));
    }

    #[test]
    fn errors() {
        assert!(parse_expr("2 +").is_err());
        assert!(parse_expr("(2").is_err());
        assert!(parse_expr("2 2").is_err());
        assert!(parse_expr("0xzz").is_err());
        assert_eq!(parse_expr("1/0").unwrap().eval(&HashMap::new(), 0), Err(EvalError::DivByZero));
    }
}
