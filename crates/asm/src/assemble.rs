//! Operand realization, layout fixpoint and byte emission.

use crate::expr::Expr;
use crate::parse::{AsmError, GenInsn, Item, Mnem, Parser, SectionId, TMem, TOperand};
use crate::program::{Program, Section, Symbol, SymbolKind, SymbolTable};
use kfi_isa::{
    encode, encode_wide, jcc_near, jcc_short, jmp_near, jmp_short, Cond, Grp3Kind, MemRef, Op,
    PortArg, Rm, ShiftCount, Src, Width,
};
use std::collections::HashMap;

/// Assembler options: section base addresses.
#[derive(Debug, Clone, Copy)]
pub struct AsmOptions {
    /// Link/load address of `.text`.
    pub text_base: u32,
    /// Link/load address of `.data`; `None` places it at the next
    /// page boundary after `.text`.
    pub data_base: Option<u32>,
}

impl Default for AsmOptions {
    fn default() -> AsmOptions {
        AsmOptions { text_base: 0, data_base: None }
    }
}

/// A realized (expression-resolved) instruction.
enum RealInsn {
    Plain(Op),
    JccT { cond: Cond, target: u32 },
    JmpT { target: u32 },
    CallT { target: u32 },
}

enum EmitFail {
    /// The short branch form does not reach; promote to the near form.
    NeedWide,
    /// A real error (bad operands, undefined symbol...).
    Error(String),
}

type Resolver<'a> = dyn FnMut(&Expr) -> Result<i64, String> + 'a;

fn resolve_mem(m: &TMem, r: &mut Resolver<'_>) -> Result<MemRef, String> {
    let disp = match &m.disp {
        Some(e) => {
            let v = r(e)?;
            v as i32
        }
        None => 0,
    };
    Ok(MemRef { base: m.base, index: m.index, disp })
}

fn op_rm(op: &TOperand, width: Width, r: &mut Resolver<'_>) -> Result<Rm, String> {
    match (op, width) {
        (TOperand::Reg(reg), Width::D) => Ok(Rm::Reg(reg.index())),
        (TOperand::Reg(reg), Width::B) => {
            Err(format!("32-bit register %{} in byte operation", reg.name()))
        }
        (TOperand::Reg8(n), Width::B) => Ok(Rm::Reg(*n)),
        (TOperand::Reg8(_), Width::D) => Err("8-bit register in dword operation".into()),
        (TOperand::Mem(m), _) => Ok(Rm::Mem(resolve_mem(m, r)?)),
        (TOperand::Bare(e), _) => Ok(Rm::Mem(MemRef::abs(r(e)? as u32))),
        _ => Err("operand cannot be used as r/m".into()),
    }
}

fn op_src(op: &TOperand, width: Width, r: &mut Resolver<'_>) -> Result<Src, String> {
    match op {
        TOperand::Imm(e) => Ok(Src::Imm(r(e)? as u32)),
        _ => Ok(match op_rm(op, width, r)? {
            Rm::Reg(n) => Src::Reg(n),
            Rm::Mem(m) => Src::Mem(m),
        }),
    }
}

fn width_of_operand(op: &TOperand) -> Option<Width> {
    match op {
        TOperand::Reg(_) => Some(Width::D),
        TOperand::Reg8(_) => Some(Width::B),
        _ => None,
    }
}

/// Deduces the operand width from an explicit suffix or register operands
/// (checked in the given priority order).
fn deduce_width(explicit: Option<Width>, ops: &[&TOperand]) -> Result<Width, String> {
    if let Some(w) = explicit {
        return Ok(w);
    }
    for op in ops {
        if let Some(w) = width_of_operand(op) {
            return Ok(w);
        }
    }
    Err("cannot deduce operand width; add an l/b suffix".into())
}

fn realize(insn: &GenInsn, r: &mut Resolver<'_>) -> Result<RealInsn, String> {
    use Mnem::*;
    let ops = &insn.ops;
    let nops = ops.len();
    let wrong = |n: usize| format!("expected {n} operand(s), got {nops}");

    let real = match insn.mnem {
        Mov => {
            if nops != 2 {
                return Err(wrong(2));
            }
            // Control-register moves.
            if let TOperand::Cr(cr) = &ops[1] {
                let TOperand::Reg(src) = &ops[0] else {
                    return Err("mov to %cr needs a 32-bit register source".into());
                };
                return Ok(RealInsn::Plain(Op::MovToCr { cr: *cr, src: *src }));
            }
            if let TOperand::Cr(cr) = &ops[0] {
                let TOperand::Reg(dst) = &ops[1] else {
                    return Err("mov from %cr needs a 32-bit register destination".into());
                };
                return Ok(RealInsn::Plain(Op::MovFromCr { cr: *cr, dst: *dst }));
            }
            let width = deduce_width(insn.width, &[&ops[1], &ops[0]])?;
            let dst = op_rm(&ops[1], width, r)?;
            let src = op_src(&ops[0], width, r)?;
            RealInsn::Plain(Op::Mov { width, dst, src })
        }
        Alu(kind) => {
            if nops != 2 {
                return Err(wrong(2));
            }
            let width = deduce_width(insn.width, &[&ops[1], &ops[0]])?;
            let dst = op_rm(&ops[1], width, r)?;
            let src = op_src(&ops[0], width, r)?;
            RealInsn::Plain(Op::Alu { kind, width, dst, src })
        }
        Movzx | Movsx => {
            if nops != 2 {
                return Err(wrong(2));
            }
            let TOperand::Reg(dst) = &ops[1] else {
                return Err("movzbl/movsbl need a 32-bit register destination".into());
            };
            let src = op_rm(&ops[0], Width::B, r)?;
            if insn.mnem == Movzx {
                RealInsn::Plain(Op::Movzx { dst: *dst, src })
            } else {
                RealInsn::Plain(Op::Movsx { dst: *dst, src })
            }
        }
        Lea => {
            if nops != 2 {
                return Err(wrong(2));
            }
            let TOperand::Reg(dst) = &ops[1] else {
                return Err("lea needs a register destination".into());
            };
            let mem = match &ops[0] {
                TOperand::Mem(m) => resolve_mem(m, r)?,
                TOperand::Bare(e) => MemRef::abs(r(e)? as u32),
                _ => return Err("lea needs a memory source".into()),
            };
            RealInsn::Plain(Op::Lea { dst: *dst, mem })
        }
        Shift(kind) => {
            let (count, dst_i) = match nops {
                1 => (ShiftCount::One, 0),
                2 => {
                    let c = match &ops[0] {
                        TOperand::Imm(e) => {
                            let v = r(e)? as u32;
                            if v == 1 {
                                ShiftCount::One
                            } else {
                                ShiftCount::Imm(v as u8)
                            }
                        }
                        TOperand::Reg8(1) => ShiftCount::Cl,
                        _ => return Err("shift count must be $imm or %cl".into()),
                    };
                    (c, 1)
                }
                _ => return Err(wrong(2)),
            };
            let width = deduce_width(insn.width, &[&ops[dst_i]])?;
            let dst = op_rm(&ops[dst_i], width, r)?;
            RealInsn::Plain(Op::Shift { kind, width, dst, count })
        }
        Shld | Shrd => {
            if nops != 3 {
                return Err(wrong(3));
            }
            let count = match &ops[0] {
                TOperand::Imm(e) => ShiftCount::Imm(r(e)? as u8),
                TOperand::Reg8(1) => ShiftCount::Cl,
                _ => return Err("shld/shrd count must be $imm or %cl".into()),
            };
            let TOperand::Reg(src) = &ops[1] else {
                return Err("shld/shrd need a register filler".into());
            };
            let dst = op_rm(&ops[2], Width::D, r)?;
            if insn.mnem == Shld {
                RealInsn::Plain(Op::Shld { dst, src: *src, count })
            } else {
                RealInsn::Plain(Op::Shrd { dst, src: *src, count })
            }
        }
        Bt(kind) => {
            if nops != 2 {
                return Err(wrong(2));
            }
            let src = op_src(&ops[0], Width::D, r)?;
            let dst = op_rm(&ops[1], Width::D, r)?;
            if matches!(src, Src::Mem(_)) {
                return Err("bt source must be a register or immediate".into());
            }
            RealInsn::Plain(Op::Bt { kind, dst, src })
        }
        Xadd | Cmpxchg => {
            if nops != 2 {
                return Err(wrong(2));
            }
            let width = deduce_width(insn.width, &[&ops[0]])?;
            let TOperand::Reg(srcr) = &ops[0] else {
                return Err("xadd/cmpxchg need a register source".into());
            };
            let dst = op_rm(&ops[1], width, r)?;
            if insn.mnem == Xadd {
                RealInsn::Plain(Op::Xadd { width, dst, src: *srcr })
            } else {
                RealInsn::Plain(Op::Cmpxchg { width, dst, src: *srcr })
            }
        }
        Xchg => {
            if nops != 2 {
                return Err(wrong(2));
            }
            // One side must be a register; the encoder takes (reg, rm).
            match (&ops[0], &ops[1]) {
                (TOperand::Reg(a), other) | (other, TOperand::Reg(a)) => {
                    let rm = op_rm(other, Width::D, r)?;
                    RealInsn::Plain(Op::Xchg { reg: *a, rm })
                }
                _ => return Err("xchg needs at least one register operand".into()),
            }
        }
        Grp3(kind) => {
            if nops != 1 {
                return Err(wrong(1));
            }
            let width = deduce_width(insn.width, &[&ops[0]])?;
            let rm = op_rm(&ops[0], width, r)?;
            RealInsn::Plain(Op::Grp3 { kind, width, rm })
        }
        Imul => match nops {
            1 => {
                let width = deduce_width(insn.width, &[&ops[0]])?;
                let rm = op_rm(&ops[0], width, r)?;
                RealInsn::Plain(Op::Grp3 { kind: Grp3Kind::Imul, width, rm })
            }
            2 => {
                let TOperand::Reg(dst) = &ops[1] else {
                    return Err("imul destination must be a register".into());
                };
                let src = op_rm(&ops[0], Width::D, r)?;
                RealInsn::Plain(Op::Imul2 { dst: *dst, src })
            }
            3 => {
                let TOperand::Imm(e) = &ops[0] else {
                    return Err("three-operand imul needs $imm first".into());
                };
                let TOperand::Reg(dst) = &ops[2] else {
                    return Err("imul destination must be a register".into());
                };
                let src = op_rm(&ops[1], Width::D, r)?;
                RealInsn::Plain(Op::Imul3 { dst: *dst, src, imm: r(e)? as i32 })
            }
            _ => return Err(wrong(2)),
        },
        Inc | Dec => {
            if nops != 1 {
                return Err(wrong(1));
            }
            let width = deduce_width(insn.width, &[&ops[0]])?;
            let rm = op_rm(&ops[0], width, r)?;
            RealInsn::Plain(Op::IncDec { inc: insn.mnem == Inc, width, rm })
        }
        Push => {
            if nops != 1 {
                return Err(wrong(1));
            }
            let src = op_src(&ops[0], Width::D, r)?;
            RealInsn::Plain(Op::Push(src))
        }
        Pop => {
            if nops != 1 {
                return Err(wrong(1));
            }
            let rm = op_rm(&ops[0], Width::D, r)?;
            RealInsn::Plain(Op::Pop(rm))
        }
        Pusha => RealInsn::Plain(Op::Pusha),
        Popa => RealInsn::Plain(Op::Popa),
        Pushf => RealInsn::Plain(Op::Pushf),
        Popf => RealInsn::Plain(Op::Popf),
        Jcc(cond) => match ops.as_slice() {
            [TOperand::Bare(e)] => RealInsn::JccT { cond, target: r(e)? as u32 },
            _ => return Err("conditional jump needs a label target".into()),
        },
        Jmp => match ops.as_slice() {
            [TOperand::Bare(e)] => RealInsn::JmpT { target: r(e)? as u32 },
            [TOperand::Star(inner)] => {
                let rm = op_rm(inner, Width::D, r)?;
                RealInsn::Plain(Op::JmpInd(rm))
            }
            _ => return Err("jmp needs a label or *indirect target".into()),
        },
        Call => match ops.as_slice() {
            [TOperand::Bare(e)] => RealInsn::CallT { target: r(e)? as u32 },
            [TOperand::Star(inner)] => {
                let rm = op_rm(inner, Width::D, r)?;
                RealInsn::Plain(Op::CallInd(rm))
            }
            _ => return Err("call needs a label or *indirect target".into()),
        },
        Ret => match ops.as_slice() {
            [] => RealInsn::Plain(Op::Ret),
            [TOperand::Imm(e)] => RealInsn::Plain(Op::RetImm(r(e)? as u16)),
            _ => return Err("ret takes no operand or $imm".into()),
        },
        Lret => RealInsn::Plain(Op::Lret),
        Leave => RealInsn::Plain(Op::Leave),
        Int => match ops.as_slice() {
            [TOperand::Imm(e)] => RealInsn::Plain(Op::Int(r(e)? as u8)),
            _ => return Err("int needs $vector".into()),
        },
        Int3 => RealInsn::Plain(Op::Int3),
        Into => RealInsn::Plain(Op::Into),
        Iret => RealInsn::Plain(Op::Iret),
        Bound => match ops.as_slice() {
            [TOperand::Reg(reg), TOperand::Mem(m)] => {
                RealInsn::Plain(Op::Bound { reg: *reg, mem: resolve_mem(m, r)? })
            }
            [TOperand::Mem(m), TOperand::Reg(reg)] => {
                RealInsn::Plain(Op::Bound { reg: *reg, mem: resolve_mem(m, r)? })
            }
            _ => return Err("bound needs a register and a memory bounds pair".into()),
        },
        Setcc(cond) => {
            if nops != 1 {
                return Err(wrong(1));
            }
            let rm = op_rm(&ops[0], Width::B, r)?;
            RealInsn::Plain(Op::Setcc { cond, rm })
        }
        Cmov(cond) => {
            if nops != 2 {
                return Err(wrong(2));
            }
            let TOperand::Reg(dst) = &ops[1] else {
                return Err("cmov destination must be a register".into());
            };
            let src = op_rm(&ops[0], Width::D, r)?;
            RealInsn::Plain(Op::Cmov { cond, dst: *dst, src })
        }
        Ud2 => RealInsn::Plain(Op::Ud2),
        Hlt => RealInsn::Plain(Op::Hlt),
        Nop => RealInsn::Plain(Op::Nop),
        Cwde => RealInsn::Plain(Op::Cwde),
        Cdq => RealInsn::Plain(Op::Cdq),
        Bswap => match ops.as_slice() {
            [TOperand::Reg(reg)] => RealInsn::Plain(Op::Bswap(*reg)),
            _ => return Err("bswap needs a 32-bit register".into()),
        },
        Rdtsc => RealInsn::Plain(Op::Rdtsc),
        Cpuid => RealInsn::Plain(Op::Cpuid),
        In => {
            if nops != 2 {
                return Err(wrong(2));
            }
            let width = deduce_width(insn.width, &[&ops[1]])?;
            let port = port_arg(&ops[0], r)?;
            check_acc(&ops[1], width)?;
            RealInsn::Plain(Op::In { width, port })
        }
        Out => {
            if nops != 2 {
                return Err(wrong(2));
            }
            let width = deduce_width(insn.width, &[&ops[0]])?;
            check_acc(&ops[0], width)?;
            let port = port_arg(&ops[1], r)?;
            RealInsn::Plain(Op::Out { width, port })
        }
        Str(kind, width) => RealInsn::Plain(Op::Str { kind, width, rep: insn.rep }),
        Lidt => match ops.as_slice() {
            [TOperand::Mem(m)] => RealInsn::Plain(Op::Lidt(resolve_mem(m, r)?)),
            [TOperand::Bare(e)] => RealInsn::Plain(Op::Lidt(MemRef::abs(r(e)? as u32))),
            _ => return Err("lidt needs a memory operand".into()),
        },
        Cli => RealInsn::Plain(Op::Cli),
        Sti => RealInsn::Plain(Op::Sti),
        Aam => RealInsn::Plain(Op::Aam(optional_imm(ops, r, 10)?)),
        Aad => RealInsn::Plain(Op::Aad(optional_imm(ops, r, 10)?)),
        Xlat => RealInsn::Plain(Op::Xlat),
        Cmc => RealInsn::Plain(Op::Cmc),
        Clc => RealInsn::Plain(Op::Clc),
        Stc => RealInsn::Plain(Op::Stc),
        Cld => RealInsn::Plain(Op::Cld),
        Std => RealInsn::Plain(Op::Std),
        Sahf => RealInsn::Plain(Op::Sahf),
        Lahf => RealInsn::Plain(Op::Lahf),
    };
    Ok(real)
}

fn optional_imm(ops: &[TOperand], r: &mut Resolver<'_>, default: u8) -> Result<u8, String> {
    match ops {
        [] => Ok(default),
        [TOperand::Imm(e)] => Ok(r(e)? as u8),
        _ => Err("expected optional $imm".into()),
    }
}

fn port_arg(op: &TOperand, r: &mut Resolver<'_>) -> Result<PortArg, String> {
    match op {
        TOperand::Imm(e) => Ok(PortArg::Imm(r(e)? as u8)),
        TOperand::Dx => Ok(PortArg::Dx),
        _ => Err("port must be $imm8 or %dx".into()),
    }
}

fn check_acc(op: &TOperand, width: Width) -> Result<(), String> {
    match (op, width) {
        (TOperand::Reg8(0), Width::B) => Ok(()),
        (TOperand::Reg(kfi_isa::Reg::Eax), Width::D) => Ok(()),
        _ => Err("in/out data operand must be %al or %eax".into()),
    }
}

fn emit_real(real: &RealInsn, addr: u32, wide: bool) -> Result<Vec<u8>, EmitFail> {
    match real {
        RealInsn::Plain(op) => {
            let r = if wide { encode_wide(op) } else { encode(op) };
            r.map_err(|e| EmitFail::Error(e.to_string()))
        }
        RealInsn::JccT { cond, target } => {
            if wide {
                Ok(jcc_near(*cond, target.wrapping_sub(addr.wrapping_add(6)) as i32))
            } else {
                jcc_short(*cond, target.wrapping_sub(addr.wrapping_add(2)) as i32)
                    .map_err(|_| EmitFail::NeedWide)
            }
        }
        RealInsn::JmpT { target } => {
            if wide {
                Ok(jmp_near(target.wrapping_sub(addr.wrapping_add(5)) as i32))
            } else {
                jmp_short(target.wrapping_sub(addr.wrapping_add(2)) as i32)
                    .map_err(|_| EmitFail::NeedWide)
            }
        }
        RealInsn::CallT { target } => {
            Ok(kfi_isa::call_rel(target.wrapping_sub(addr.wrapping_add(5)) as i32))
        }
    }
}

/// A multi-source assembler.
///
/// # Examples
///
/// ```
/// use kfi_asm::{Assembler, AsmOptions};
/// let mut a = Assembler::new();
/// a.add_source("demo.s", ".text\nstart:\n  movl $1, %eax\n  ret\n")?;
/// let prog = a.finish(&AsmOptions { text_base: 0x1000, data_base: None })?;
/// assert_eq!(prog.symbols.addr_of("start"), Some(0x1000));
/// assert_eq!(prog.text.bytes, vec![0xb8, 1, 0, 0, 0, 0xc3]);
/// # Ok::<(), kfi_asm::AsmError>(())
/// ```
pub struct Assembler {
    parser: Parser,
}

impl Default for Assembler {
    fn default() -> Assembler {
        Assembler::new()
    }
}

impl Assembler {
    /// Creates an empty assembler.
    pub fn new() -> Assembler {
        Assembler { parser: Parser::new() }
    }

    /// Parses and appends one source file.
    ///
    /// # Errors
    ///
    /// Returns the first syntax error with file/line position.
    pub fn add_source(&mut self, name: &str, source: &str) -> Result<(), AsmError> {
        self.parser.parse_source(name, source)
    }

    /// Lays out, resolves and emits the program.
    ///
    /// # Errors
    ///
    /// Undefined symbols, unencodable operand combinations, duplicate
    /// labels, or a non-converging layout.
    pub fn finish(self, opts: &AsmOptions) -> Result<Program, AsmError> {
        Layout::run(self.parser, opts)
    }
}

/// Convenience one-shot assembly of a single source string.
///
/// # Errors
///
/// See [`Assembler::finish`].
pub fn assemble(source: &str, opts: &AsmOptions) -> Result<Program, AsmError> {
    let mut a = Assembler::new();
    a.add_source("<input>", source)?;
    a.finish(opts)
}

struct Layout {
    items: Vec<Item>,
    equs: HashMap<String, u32>,
    sizes: Vec<u32>,
    wide: Vec<bool>,
}

const PLACEHOLDER: i64 = 0x0c0f_fee0;

impl Layout {
    fn run(parser: Parser, opts: &AsmOptions) -> Result<Program, AsmError> {
        let equs = parser.equs.clone();
        let items = parser.items;
        let n = items.len();
        let mut l = Layout { items, equs, sizes: vec![0; n], wide: vec![false; n] };
        l.init_sizes()?;

        let mut symbols;
        for iter in 0..64 {
            let (labels, _) = l.walk(opts)?;
            symbols = l.equs.clone();
            symbols.extend(labels.clone());
            let mut changed = false;
            // Re-emit every instruction against the new symbol values.
            let (_, placements) = l.walk(opts)?;
            for (i, addr) in placements {
                let Item::Insn(insn) = &l.items[i] else { continue };
                let mut resolver = resolver_for(&symbols, addr);
                let real = realize(insn, &mut resolver).map_err(|m| err_at(insn, m))?;
                match emit_real(&real, addr, l.wide[i]) {
                    Ok(bytes) => {
                        if bytes.len() as u32 != l.sizes[i] {
                            if !l.wide[i] {
                                l.wide[i] = true;
                                let wb =
                                    emit_real(&real, addr, true).map_err(|f| emit_err(insn, f))?;
                                l.sizes[i] = wb.len() as u32;
                            } else {
                                l.sizes[i] = bytes.len() as u32;
                            }
                            changed = true;
                        }
                    }
                    Err(EmitFail::NeedWide) => {
                        l.wide[i] = true;
                        let wb = emit_real(&real, addr, true).map_err(|f| emit_err(insn, f))?;
                        l.sizes[i] = wb.len() as u32;
                        changed = true;
                    }
                    Err(f) => return Err(emit_err(insn, f)),
                }
            }
            if !changed {
                return l.finalize(opts, &symbols);
            }
            let _ = iter;
        }
        Err(AsmError { file: "<layout>".into(), line: 0, msg: "layout did not converge".into() })
    }

    /// Initial size estimates: branches optimistic-short, everything else
    /// emitted with a large placeholder for unresolved symbols.
    fn init_sizes(&mut self) -> Result<(), AsmError> {
        for i in 0..self.items.len() {
            let Item::Insn(insn) = &self.items[i] else { continue };
            match insn.mnem {
                Mnem::Jcc(_) if matches!(insn.ops.as_slice(), [TOperand::Bare(_)]) => {
                    self.sizes[i] = 2;
                }
                Mnem::Jmp if matches!(insn.ops.as_slice(), [TOperand::Bare(_)]) => {
                    self.sizes[i] = 2;
                }
                Mnem::Call if matches!(insn.ops.as_slice(), [TOperand::Bare(_)]) => {
                    self.sizes[i] = 5;
                }
                _ => {
                    let equs = self.equs.clone();
                    let mut resolver = move |e: &Expr| -> Result<i64, String> {
                        match e.eval(&equs, 0) {
                            Ok(v) => Ok(v),
                            Err(_) => Ok(PLACEHOLDER),
                        }
                    };
                    let real = realize(insn, &mut resolver).map_err(|m| err_at(insn, m))?;
                    let bytes = emit_real(&real, 0, false).map_err(|f| emit_err(insn, f))?;
                    self.sizes[i] = bytes.len() as u32;
                }
            }
        }
        Ok(())
    }

    /// Walks items assigning addresses. Returns the label table and the
    /// (item index, address) placement of every instruction/data item.
    #[allow(clippy::type_complexity)]
    fn walk(
        &self,
        opts: &AsmOptions,
    ) -> Result<(HashMap<String, u32>, Vec<(usize, u32)>), AsmError> {
        let mut labels = HashMap::new();
        let mut placements = Vec::new();
        // Two passes over sections: first text to learn its size, then data.
        let mut text_len = 0u32;
        for pass in 0..2 {
            let (section, base) = if pass == 0 {
                (SectionId::Text, opts.text_base)
            } else {
                let data_base = opts
                    .data_base
                    .unwrap_or_else(|| (opts.text_base + text_len).next_multiple_of(4096));
                (SectionId::Data, data_base)
            };
            let mut addr = base;
            let mut current = SectionId::Text;
            for (i, item) in self.items.iter().enumerate() {
                match item {
                    Item::Section(s) => current = *s,
                    _ if current != section => continue,
                    Item::Label(name) => {
                        if labels.insert(name.clone(), addr).is_some() && pass == 0 {
                            return Err(AsmError {
                                file: "<layout>".into(),
                                line: 0,
                                msg: format!("duplicate label `{name}`"),
                            });
                        }
                    }
                    Item::Insn(_) => {
                        placements.push((i, addr));
                        addr += self.sizes[i];
                    }
                    Item::Data { width, exprs, .. } => {
                        placements.push((i, addr));
                        addr += *width as u32 * exprs.len() as u32;
                    }
                    Item::Bytes(b) => {
                        placements.push((i, addr));
                        addr += b.len() as u32;
                    }
                    Item::Align(a) => {
                        placements.push((i, addr));
                        addr = addr.next_multiple_of(*a);
                    }
                    Item::Space(n, _) => {
                        placements.push((i, addr));
                        addr += n;
                    }
                    Item::FuncMark(_) | Item::Global(_) | Item::Subsystem(_) => {}
                }
            }
            if pass == 0 {
                text_len = addr - base;
            }
        }
        Ok((labels, placements))
    }

    fn finalize(
        self,
        opts: &AsmOptions,
        symbols: &HashMap<String, u32>,
    ) -> Result<Program, AsmError> {
        let (labels, _) = self.walk(opts)?;
        let data_base = opts.data_base.unwrap_or_else(|| {
            // Recompute text length for the default placement.
            let text_end = labels
                .values()
                .copied()
                .filter(|a| *a >= opts.text_base)
                .max()
                .unwrap_or(opts.text_base);
            let _ = text_end;
            0 // replaced below by the walk-based layout
        });
        let _ = data_base;

        // Emit section bytes.
        let mut text = Vec::new();
        let mut data = Vec::new();
        let mut func_marks: Vec<String> = Vec::new();
        let mut globals: Vec<String> = Vec::new();
        let mut label_meta: HashMap<String, (SectionId, Option<String>)> = HashMap::new();

        let mut text_len = 0u32;
        let mut data_base_actual = 0u32;
        for pass in 0..2 {
            let (section, base) = if pass == 0 {
                (SectionId::Text, opts.text_base)
            } else {
                let b = opts
                    .data_base
                    .unwrap_or_else(|| (opts.text_base + text_len).next_multiple_of(4096));
                data_base_actual = b;
                (SectionId::Data, b)
            };
            let out = if pass == 0 { &mut text } else { &mut data };
            let mut addr = base;
            let mut current = SectionId::Text;
            let mut subsystem: Option<String> = None;
            for (i, item) in self.items.iter().enumerate() {
                match item {
                    Item::Section(s) => current = *s,
                    Item::Subsystem(s) => {
                        if pass == 0 {
                            // Subsystem context is global source order;
                            // track it on the text pass only.
                        }
                        subsystem = Some(s.clone());
                    }
                    Item::FuncMark(n) => {
                        if pass == 0 {
                            func_marks.push(n.clone());
                        }
                    }
                    Item::Global(n) => {
                        if pass == 0 {
                            globals.push(n.clone());
                        }
                    }
                    _ if current != section => continue,
                    Item::Label(name) => {
                        label_meta
                            .entry(name.clone())
                            .or_insert_with(|| (section, subsystem.clone()));
                    }
                    Item::Insn(insn) => {
                        let mut resolver = resolver_for(symbols, addr);
                        let real = realize(insn, &mut resolver).map_err(|m| err_at(insn, m))?;
                        let bytes =
                            emit_real(&real, addr, self.wide[i]).map_err(|f| emit_err(insn, f))?;
                        debug_assert_eq!(bytes.len() as u32, self.sizes[i]);
                        addr += bytes.len() as u32;
                        out.extend_from_slice(&bytes);
                    }
                    Item::Data { width, exprs, file, line } => {
                        for e in exprs {
                            let v = e.eval(symbols, addr).map_err(|m| AsmError {
                                file: file.clone(),
                                line: *line,
                                msg: m.to_string(),
                            })? as u64;
                            out.extend_from_slice(&v.to_le_bytes()[..*width as usize]);
                            addr += *width as u32;
                        }
                    }
                    Item::Bytes(b) => {
                        out.extend_from_slice(b);
                        addr += b.len() as u32;
                    }
                    Item::Align(a) => {
                        let target = addr.next_multiple_of(*a);
                        let fill = if section == SectionId::Text { 0x90 } else { 0 };
                        while addr < target {
                            out.push(fill);
                            addr += 1;
                        }
                    }
                    Item::Space(n, fill) => {
                        out.extend(std::iter::repeat(*fill).take(*n as usize));
                        addr += n;
                    }
                }
            }
            if pass == 0 {
                text_len = addr - base;
            }
        }

        // Build symbols.
        let mut syms = Vec::new();
        for (name, value) in &labels {
            let (section, subsystem) =
                label_meta.get(name).cloned().unwrap_or((SectionId::Text, None));
            let kind = if func_marks.iter().any(|f| f == name) {
                SymbolKind::Function
            } else {
                SymbolKind::Label
            };
            let _ = section;
            syms.push(Symbol {
                name: name.clone(),
                value: *value,
                size: 0,
                kind,
                subsystem,
                global: globals.iter().any(|g| g == name),
            });
        }
        for (name, value) in &self.equs {
            syms.push(Symbol {
                name: name.clone(),
                value: *value,
                size: 0,
                kind: SymbolKind::Constant,
                subsystem: None,
                global: false,
            });
        }
        // Missing .type targets are an error (catches typos).
        for f in &func_marks {
            if !labels.contains_key(f) {
                return Err(AsmError {
                    file: "<layout>".into(),
                    line: 0,
                    msg: format!(".type for undefined symbol `{f}`"),
                });
            }
        }

        // Function sizes: distance to the next function or section end.
        let text_end = opts.text_base + text_len;
        let data_end = data_base_actual + data.len() as u32;
        let mut func_addrs: Vec<u32> =
            syms.iter().filter(|s| s.kind == SymbolKind::Function).map(|s| s.value).collect();
        func_addrs.sort_unstable();
        for s in &mut syms {
            if s.kind == SymbolKind::Function {
                let next = func_addrs.iter().copied().find(|a| *a > s.value).unwrap_or(u32::MAX);
                let section_end = if s.value >= data_base_actual && data_base_actual > 0 {
                    data_end
                } else {
                    text_end
                };
                s.size = next.min(section_end).saturating_sub(s.value);
            }
        }

        Ok(Program {
            text: Section { name: ".text".into(), base: opts.text_base, bytes: text },
            data: Section { name: ".data".into(), base: data_base_actual, bytes: data },
            symbols: SymbolTable::build(syms),
        })
    }
}

fn resolver_for<'a>(
    symbols: &'a HashMap<String, u32>,
    addr: u32,
) -> impl FnMut(&Expr) -> Result<i64, String> + 'a {
    move |e: &Expr| e.eval(symbols, addr).map_err(|m| m.to_string())
}

fn err_at(insn: &GenInsn, msg: String) -> AsmError {
    AsmError { file: insn.file.clone(), line: insn.line, msg }
}

fn emit_err(insn: &GenInsn, f: EmitFail) -> AsmError {
    let msg = match f {
        EmitFail::NeedWide => "internal: wide emission failed".to_string(),
        EmitFail::Error(m) => m,
    };
    err_at(insn, msg)
}
