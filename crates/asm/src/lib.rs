//! # kfi-asm — AT&T-syntax assembler and disassembler
//!
//! Assembles the guest kernel and workload sources into loadable images
//! with a full symbol table (functions, sizes, subsystem tags). The
//! subsystem tags (`.subsystem fs` directives in the kernel sources) are
//! what lets the injector attribute a crash EIP to `arch`/`fs`/`kernel`/
//! `mm` for the paper's error-propagation analysis (Figure 8).
//!
//! Branch relaxation uses a monotone-widening fixpoint: every branch
//! starts short and is only ever promoted to the near form, so layout
//! terminates and short `jcc` encodings dominate — matching the byte-level
//! shape of real kernel code that campaigns B and C flip bits in.
//!
//! # Examples
//!
//! ```
//! use kfi_asm::{assemble, AsmOptions};
//!
//! let prog = assemble(
//!     ".text\n.subsystem mm\n.type alloc, @function\nalloc:\n  movl $1, %eax\n  ret\n",
//!     &AsmOptions { text_base: 0xc010_0000, data_base: None },
//! )?;
//! let f = prog.symbols.function_at(0xc010_0001).unwrap();
//! assert_eq!(f.name, "alloc");
//! assert_eq!(f.subsystem.as_deref(), Some("mm"));
//! # Ok::<(), kfi_asm::AsmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assemble;
mod disasm;
mod expr;
mod parse;
mod program;

pub use assemble::{assemble, AsmOptions, Assembler};
pub use disasm::{disassemble, format_listing, DisasmLine};
pub use expr::{parse_expr, BinOp, EvalError, Expr};
pub use parse::AsmError;
pub use program::{Program, Section, Symbol, SymbolKind, SymbolTable};
