//! Property-based assembler tests: layout convergence and assembler/
//! decoder agreement on generated programs.

use kfi_asm::{assemble, disassemble, AsmOptions};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Programs full of forward/backward branches with arbitrary padding
    /// always converge, and every branch resolves to a defined label.
    #[test]
    fn branch_relaxation_converges(
        pads in proptest::collection::vec(0usize..200, 2..24),
        hops in proptest::collection::vec(any::<u16>(), 2..24),
    ) {
        let n = pads.len();
        let mut src = String::from(".text\n");
        for (i, pad) in pads.iter().enumerate() {
            let target = (hops[i % hops.len()] as usize) % n;
            src.push_str(&format!("l{i}:\n  jne l{target}\n  .space {pad}\n"));
        }
        src.push_str("  ret\n");
        let prog = assemble(&src, &AsmOptions { text_base: 0x1000, data_base: None }).unwrap();
        // every jne target is a defined label address
        for line in disassemble(&prog.text.bytes, 0x1000) {
            if let Some(t) = line.text.strip_prefix("jne ") {
                let target = u32::from_str_radix(t.trim_start_matches("0x"), 16).unwrap();
                prop_assert!(
                    prog.symbols.iter().any(|s| s.value == target),
                    "dangling branch to {target:#x}"
                );
            }
        }
    }

    /// Immediates of every size assemble and decode back to the same
    /// value.
    #[test]
    fn immediates_roundtrip(v in any::<u32>()) {
        let src = format!(".text\nf: movl ${v}, %eax\n   addl ${v}, %ebx\n   cmpl ${v}, %ecx\n   ret\n");
        let prog = assemble(&src, &AsmOptions::default()).unwrap();
        let lines = disassemble(&prog.text.bytes, 0);
        let want = format!("{:#x}", v);
        prop_assert!(lines[0].text.contains(&format!("${want}")), "{}", lines[0].text);
        prop_assert!(lines[1].text.contains(&format!("${want}")), "{}", lines[1].text);
    }

    /// Displacements of every size and sign encode and decode exactly.
    #[test]
    fn displacements_roundtrip(d in -0x7fffffffi32..0x7fffffff) {
        let src = format!(".text\nf: movl {d}(%ebx), %eax\n   ret\n");
        let prog = assemble(&src, &AsmOptions::default()).unwrap();
        let insn = kfi_isa::decode(&prog.text.bytes).unwrap();
        match insn.op {
            kfi_isa::Op::Mov { src: kfi_isa::Src::Mem(m), .. } => {
                prop_assert_eq!(m.disp, d);
            }
            other => prop_assert!(false, "unexpected {other:?}"),
        }
    }
}
