//! End-to-end assembler tests: assemble real programs, check layout,
//! relaxation, symbol attribution, and round-trip through the decoder.

use kfi_asm::{assemble, disassemble, AsmOptions, SymbolKind};

const BASE: u32 = 0xc010_0000;

fn opts() -> AsmOptions {
    AsmOptions { text_base: BASE, data_base: None }
}

#[test]
fn forward_and_backward_short_branches() {
    let prog = assemble(
        r#"
        .text
        start:
            xorl %eax, %eax
        loop:
            incl %eax
            cmpl $10, %eax
            jne loop
            ret
        "#,
        &opts(),
    )
    .unwrap();
    // The backward jne must be the 2-byte short form.
    let lines = disassemble(&prog.text.bytes, BASE);
    let jne = lines.iter().find(|l| l.text.starts_with("jne")).unwrap();
    assert_eq!(jne.bytes.len(), 2);
    let loop_addr = prog.symbols.addr_of("loop").unwrap();
    assert!(jne.text.ends_with(&format!("{loop_addr:#x}")));
}

#[test]
fn long_branch_promoted_to_near() {
    let mut src = String::from(".text\nstart:\n  jne far_away\n");
    for _ in 0..100 {
        src.push_str("  nop\n  nop\n");
    }
    src.push_str("far_away:\n  ret\n");
    let prog = assemble(&src, &opts()).unwrap();
    let lines = disassemble(&prog.text.bytes, BASE);
    let jne = &lines[0];
    assert_eq!(jne.bytes.len(), 6, "must be near form: {}", jne.text);
    let target = prog.symbols.addr_of("far_away").unwrap();
    assert!(jne.text.ends_with(&format!("{target:#x}")));
}

#[test]
fn mixed_relaxation_converges() {
    // A chain where promoting one branch pushes another out of range.
    let mut src = String::from(".text\n");
    for i in 0..40 {
        src.push_str(&format!("l{i}:\n  jne l{}\n", (i + 20) % 40));
        src.push_str("  .space 6\n");
    }
    src.push_str("  ret\n");
    let prog = assemble(&src, &opts()).unwrap();
    // Every branch target must be exact after convergence.
    let lines = disassemble(&prog.text.bytes, BASE);
    for l in &lines {
        if let Some(t) = l.text.strip_prefix("jne ") {
            let target = u32::from_str_radix(t.trim_start_matches("0x"), 16).unwrap();
            assert!(
                prog.symbols.iter().any(|s| s.value == target),
                "branch to non-label {target:#x}"
            );
        }
    }
}

#[test]
fn data_section_and_symbols() {
    let prog = assemble(
        r#"
        .text
        f:  movl counter, %eax
            incl %eax
            movl %eax, counter
            ret
        .data
        counter: .long 41
        message: .asciz "hello"
        table:   .long f, counter, table
        "#,
        &opts(),
    )
    .unwrap();
    let counter = prog.symbols.addr_of("counter").unwrap();
    assert!(counter >= prog.data.base);
    assert_eq!(prog.data.bytes[0..4], 41u32.to_le_bytes());
    let msg_off = (prog.symbols.addr_of("message").unwrap() - prog.data.base) as usize;
    assert_eq!(&prog.data.bytes[msg_off..msg_off + 6], b"hello\0");
    // Pointer table resolves symbol values.
    let tbl_off = (prog.symbols.addr_of("table").unwrap() - prog.data.base) as usize;
    let f_addr = u32::from_le_bytes(prog.data.bytes[tbl_off..tbl_off + 4].try_into().unwrap());
    assert_eq!(f_addr, prog.symbols.addr_of("f").unwrap());
}

#[test]
fn subsystem_attribution_and_function_sizes() {
    let prog = assemble(
        r#"
        .text
        .subsystem arch
        .type do_page_fault, @function
        do_page_fault:
            push %ebp
            pop %ebp
            ret
        .subsystem mm
        .type zap_page_range, @function
        zap_page_range:
            nop
            nop
            ret
        "#,
        &opts(),
    )
    .unwrap();
    let dpf = prog.symbols.lookup("do_page_fault").unwrap();
    assert_eq!(dpf.kind, SymbolKind::Function);
    assert_eq!(dpf.subsystem.as_deref(), Some("arch"));
    assert_eq!(dpf.size, 3);
    let zpr = prog.symbols.lookup("zap_page_range").unwrap();
    assert_eq!(zpr.subsystem.as_deref(), Some("mm"));
    assert_eq!(zpr.size, 3);
    // Address lookup resolves interior addresses.
    assert_eq!(prog.symbols.function_at(dpf.value + 1).unwrap().name, "do_page_fault");
    assert_eq!(prog.symbols.function_at(zpr.value + 2).unwrap().name, "zap_page_range");
}

#[test]
fn equ_constants_and_expressions() {
    let prog = assemble(
        r#"
        .equ PAGE_SIZE, 4096
        .equ NR_TASKS, 16
        .text
        f:  movl $PAGE_SIZE*NR_TASKS, %eax
            andl $~(PAGE_SIZE-1), %eax
            ret
        "#,
        &opts(),
    )
    .unwrap();
    let lines = disassemble(&prog.text.bytes, BASE);
    assert!(lines[0].text.contains("$0x10000"));
    assert!(lines[1].text.contains("$0xfffff000"));
}

#[test]
fn align_pads_with_nops_in_text() {
    let prog = assemble(".text\nnop\n.align 8\nf: ret\n", &opts()).unwrap();
    assert_eq!(prog.symbols.addr_of("f").unwrap() % 8, 0);
    assert!(prog.text.bytes[1..7].iter().all(|b| *b == 0x90));
}

#[test]
fn runs_on_the_machine() {
    // Recursive factorial through the real machine, assembled at an
    // identity (paging-off) address.
    let load = 0x10000;
    let prog = assemble(
        r#"
        .text
        start:
            movl $6, %eax
            call fact
            cli
            hlt
        .type fact, @function
        fact:
            cmpl $1, %eax
            jbe 1f
            push %eax
            decl %eax
            call fact
            pop %ecx
            imul %ecx, %eax
            ret
        1:  movl $1, %eax
            ret
        "#,
        &AsmOptions { text_base: load, data_base: None },
    )
    .unwrap();
    let mut m = kfi_machine::Machine::new(kfi_machine::MachineConfig {
        timer_enabled: false,
        ..Default::default()
    });
    m.mem.load(load, &prog.text.bytes);
    m.cpu.eip = prog.symbols.addr_of("start").unwrap();
    m.cpu.set(kfi_isa::Reg::Esp, 0x8000);
    assert_eq!(m.run(100_000), kfi_machine::RunExit::Halted);
    assert_eq!(m.cpu.get(kfi_isa::Reg::Eax), 720);
}

#[test]
fn string_table_and_indirect_calls() {
    let prog = assemble(
        r#"
        .text
        dispatch:
            movl table(,%eax,4), %ebx
            call *%ebx
            jmp *table(,%eax,4)
        .data
        table: .long dispatch, dispatch
        "#,
        &opts(),
    )
    .unwrap();
    let lines = disassemble(&prog.text.bytes, BASE);
    assert!(lines[0].text.contains("(,%eax,4)"));
    assert!(lines[1].text.starts_with("call *"));
    assert!(lines[2].text.starts_with("jmp *"));
}

#[test]
fn errors_are_positioned() {
    let e = assemble(".text\n nop\n movl %eax\n", &opts()).unwrap_err();
    assert_eq!(e.line, 3);
    let e = assemble(".text\n jmp nowhere\n", &opts()).unwrap_err();
    assert!(e.msg.contains("nowhere"));
    let e = assemble(".text\nx: nop\nx: nop\n", &opts()).unwrap_err();
    assert!(e.msg.contains("duplicate"));
}

#[test]
fn every_assembled_byte_decodes_back() {
    // The whole text section must decode cleanly instruction by
    // instruction (no (bad) lines) — guards encoder/decoder agreement.
    let prog = assemble(
        r#"
        .text
        f:
            pusha
            pushf
            movl $0xdeadbeef, %esi
            movb $7, %bl
            movzbl 3(%esi), %eax
            movsbl (%esi,%ecx,2), %edx
            lea 0x10(%esp), %ebp
            addl $128, %eax
            subl $1, %eax
            testb $3, %al
            xchg %eax, %ebx
            xadd %ecx, %edx
            cmpxchg %ebx, (%esi)
            btsl $5, 8(%esi)
            shll $4, %eax
            shrl %cl, %edx
            shrd $12, %edx, %eax
            imul $100, %ebx, %ecx
            notl %eax
            negl %ebx
            mull %ecx
            divl %ecx
            sete %al
            cmovne %ecx, %edx
            rep movsl
            repne scasb
            std
            cld
            int $0x80
            in %dx, %eax
            out %eax, %dx
            mov %cr2, %eax
            mov %eax, %cr3
            popf
            popa
            leave
            ret
        "#,
        &opts(),
    )
    .unwrap();
    let lines = disassemble(&prog.text.bytes, BASE);
    for l in &lines {
        assert_ne!(l.text, "(bad)", "byte {:02x?} at {:#x}", l.bytes, l.addr);
    }
}

#[test]
fn macros_expand() {
    let prog = assemble(
        r#"
        .macro SYSCALL nr
            movl $\nr, %eax
            int $0x80
        .endm
        .macro BUG
            ud2a
        .endm
        .macro CHECK_EQ reg, val
            cmpl $\val, \reg
            je 1f
            BUG
        1:
        .endm
        .text
        f:
            SYSCALL 20
            CHECK_EQ %eax, 7
            ret
        "#,
        &opts(),
    )
    .unwrap();
    let lines = disassemble(&prog.text.bytes, BASE);
    let texts: Vec<&str> = lines.iter().map(|l| l.text.as_str()).collect();
    assert_eq!(texts[0], "movl $0x14,%eax");
    assert!(texts[1].starts_with("int"));
    assert!(texts[2].starts_with("cmpl $0x7"));
    assert!(texts[3].starts_with("je"));
    assert_eq!(texts[4], "ud2a");
    assert_eq!(texts[5], "ret");
}

#[test]
fn macro_local_labels_are_unique_per_expansion() {
    let prog = assemble(
        r#"
        .macro TWICE
        1:  nop
            jne 1b
        .endm
        .text
        f:
            TWICE
            TWICE
            ret
        "#,
        &opts(),
    )
    .unwrap();
    let lines = disassemble(&prog.text.bytes, BASE);
    // Each jne must target its own expansion's label.
    let jne1 = lines.iter().position(|l| l.text.starts_with("jne")).unwrap();
    let jne2 = lines.iter().rposition(|l| l.text.starts_with("jne")).unwrap();
    assert_ne!(jne1, jne2);
    assert!(lines[jne1].text.ends_with(&format!("{:#x}", lines[jne1 - 1].addr)));
    assert!(lines[jne2].text.ends_with(&format!("{:#x}", lines[jne2 - 1].addr)));
}
