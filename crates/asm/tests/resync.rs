//! Disassembler resynchronization on bit-flipped instruction streams.
//!
//! The paper's Table 7 (example 2) shows what a single flipped bit does
//! to an IA-32 stream: the corrupted instruction changes length, the
//! following bytes decode as different instructions, and — because the
//! encoding is dense — the walk *resynchronizes* onto the original
//! boundaries within a few instructions. The crash-dump listings lean
//! on this objdump-style behavior, and the machine's fetch path decodes
//! with the same [`kfi_isa::decode`], so the disassembler's boundaries
//! must agree with what the machine actually executes.

use kfi_asm::disassemble;
use kfi_isa::{decode, encode, DecodeError, Op, Reg, Rm, Src, Width};
use kfi_machine::{Machine, MachineConfig, StepEvent};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Reference walk: exactly the advance rule the machine's fetch uses —
/// `len` bytes per decoded instruction, 1 byte after an invalid one.
fn reference_boundaries(bytes: &[u8], addr: u32) -> Vec<(u32, usize)> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let a = addr + pos as u32;
        match decode(&bytes[pos..]) {
            Ok(insn) => {
                out.push((a, insn.len as usize));
                pos += insn.len as usize;
            }
            Err(DecodeError::Invalid) => {
                out.push((a, 1));
                pos += 1;
            }
            Err(DecodeError::Truncated { .. }) => {
                out.push((a, bytes.len() - pos));
                break;
            }
        }
    }
    out
}

/// A small straight-line program (no control flow), canonical bytes.
fn straight_line_program() -> Vec<u8> {
    let ops = [
        Op::Mov { width: Width::D, dst: Rm::reg(Reg::Eax), src: Src::Imm(0x11223344) },
        Op::Alu {
            kind: kfi_isa::AluKind::Add,
            width: Width::D,
            dst: Rm::reg(Reg::Ebx),
            src: Src::Imm(1),
        },
        Op::Alu {
            kind: kfi_isa::AluKind::Xor,
            width: Width::D,
            dst: Rm::reg(Reg::Ecx),
            src: Src::Reg(Reg::Ecx as u8),
        },
        Op::IncDec { inc: true, width: Width::D, rm: Rm::reg(Reg::Edx) },
        Op::Mov { width: Width::D, dst: Rm::reg(Reg::Esi), src: Src::Imm(0xdeadbeef) },
        Op::Nop,
        Op::Nop,
        Op::Alu {
            kind: kfi_isa::AluKind::Sub,
            width: Width::D,
            dst: Rm::reg(Reg::Edi),
            src: Src::Imm(0x7f),
        },
        Op::Bswap(Reg::Eax),
        Op::Nop,
    ];
    let mut bytes = Vec::new();
    for op in &ops {
        bytes.extend_from_slice(&encode(op).expect("straight-line op encodes"));
    }
    bytes
}

#[test]
fn disassembly_matches_the_reference_walk_on_flipped_streams() {
    let base = straight_line_program();
    let mut rng = StdRng::seed_from_u64(2003);
    for case in 0..200u32 {
        let mut bytes = base.clone();
        // 1–3 random single-bit flips (the injector's corruption model).
        for _ in 0..rng.gen_range(1usize..4) {
            let off = rng.gen_range(0usize..bytes.len());
            bytes[off] ^= 1 << rng.gen_range(0u32..8);
        }
        let addr = 0xc010_0000;
        let lines = disassemble(&bytes, addr);
        let reference = reference_boundaries(&bytes, addr);
        assert_eq!(
            lines.iter().map(|l| (l.addr, l.bytes.len())).collect::<Vec<_>>(),
            reference,
            "case {case}: disassembler boundaries disagree with the decode walk"
        );
        let covered: usize = lines.iter().map(|l| l.bytes.len()).sum();
        assert_eq!(covered, bytes.len(), "case {case}: bytes dropped from the listing");
    }
}

#[test]
fn disassembly_matches_the_reference_walk_on_random_bytes() {
    let mut rng = StdRng::seed_from_u64(77);
    for case in 0..100u32 {
        let len = rng.gen_range(8usize..64);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(0u32..256) as u8).collect();
        let lines = disassemble(&bytes, 0x1000);
        let reference = reference_boundaries(&bytes, 0x1000);
        assert_eq!(
            lines.iter().map(|l| (l.addr, l.bytes.len())).collect::<Vec<_>>(),
            reference,
            "case {case}: boundaries disagree on random bytes"
        );
    }
}

/// The Table 7 shape: a flip inside a `mov $imm32` makes the immediate
/// bytes execute as instructions, and the walk resynchronizes onto the
/// original boundaries before the stream ends.
#[test]
fn flipped_stream_resynchronizes_within_the_listing() {
    let bytes = straight_line_program();
    let addr = 0x1000u32;
    let orig: Vec<u32> = disassemble(&bytes, addr).iter().map(|l| l.addr).collect();

    // Flip bit 3 of the first opcode: B8 (mov $imm32,%eax) becomes B0
    // (mov $imm8,%al), shearing four bytes off the first instruction.
    let mut flipped = bytes.clone();
    flipped[0] ^= 0x08;
    let corrupt: Vec<u32> = disassemble(&flipped, addr).iter().map(|l| l.addr).collect();

    assert_ne!(orig, corrupt, "the flip must desynchronize the stream");
    // Resync: some original boundary past the flip appears in both
    // walks, and from there on the boundaries are identical.
    let resync = orig
        .iter()
        .skip(1)
        .find(|a| corrupt.contains(a))
        .expect("the walks must share a boundary again (resync)");
    let otail: Vec<u32> = orig.iter().copied().filter(|a| a >= resync).collect();
    let ctail: Vec<u32> = corrupt.iter().copied().filter(|a| a >= resync).collect();
    assert_eq!(otail, ctail, "after resync the boundaries must agree exactly");
}

/// The machine executes exactly the boundaries the disassembler prints:
/// single-step a flipped straight-line stream and check every
/// sequentially executed instruction advanced EIP by the listed length.
#[test]
fn machine_execution_follows_disassembly_boundaries() {
    let base = straight_line_program();
    let mut rng = StdRng::seed_from_u64(4242);
    for case in 0..50u32 {
        let mut bytes = base.clone();
        let off = rng.gen_range(0usize..bytes.len());
        bytes[off] ^= 1 << rng.gen_range(0u32..8);
        bytes.extend_from_slice(&[0xfa, 0xf4]); // cli; hlt terminator

        let addr = 0x1000u32;
        let lines = disassemble(&bytes, addr);
        let len_at: std::collections::HashMap<u32, usize> =
            lines.iter().map(|l| (l.addr, l.bytes.len())).collect();

        let mut m = Machine::new(MachineConfig { timer_enabled: false, ..Default::default() });
        m.mem.load(addr, &bytes);
        m.cpu.eip = addr;
        let end = addr + bytes.len() as u32;

        for _ in 0..200 {
            let eip = m.cpu.eip;
            let traps_before = m.trap_log().len();
            let ev = m.step();
            if !matches!(ev, StepEvent::Executed) {
                break;
            }
            if m.trap_log().len() != traps_before {
                break; // a fault redirected EIP; boundary math is off the table
            }
            let Some(&len) = len_at.get(&eip) else {
                // EIP left the disassembled window (e.g. a flip created
                // a branch): nothing further to compare.
                break;
            };
            let next = m.cpu.eip;
            if next < addr || next >= end {
                break;
            }
            if next != eip + len as u32 {
                // Sequential execution must match the listing; anything
                // else must be a control-flow instruction the flip made.
                let line = lines.iter().find(|l| l.addr == eip).expect("line exists");
                assert!(
                    line.text.starts_with('j')
                        || line.text.starts_with("call")
                        || line.text.starts_with("ret")
                        || line.text.starts_with("loop")
                        || line.text.starts_with("(bad)"),
                    "case {case}: at {eip:#x} machine advanced to {next:#x}, \
                     listing says {} bytes ({})",
                    len,
                    line.text
                );
                break;
            }
        }
    }
}
