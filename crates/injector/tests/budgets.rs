//! Rig budget and hang-classification boundaries: blown boot/golden
//! budgets must surface as clean [`RigError`]s (never a wedged rig),
//! and the watchdog views of a wedged guest — `cli;hlt` without a
//! shutdown report, or a blown cycle budget — must classify as
//! [`Outcome::Hang`].

use kfi_injector::{Campaign, InjectionTarget, InjectorRig, Outcome, RigConfig, RigError};
use kfi_kernel::{build_kernel, KernelBuildOptions};
use kfi_machine::RunExit;

fn rig_with(config: RigConfig) -> Result<InjectorRig, RigError> {
    let image = build_kernel(KernelBuildOptions::default()).unwrap();
    let files = kfi_workloads::suite_files().unwrap();
    InjectorRig::new(image, &files, 1, config)
}

fn any_target(rig: &InjectorRig) -> InjectionTarget {
    let sym = rig.image.program.symbols.lookup("pipe_read").unwrap().clone();
    InjectionTarget {
        campaign: Campaign::A,
        function: "pipe_read".into(),
        subsystem: sym.subsystem.clone().unwrap_or_else(|| "fs".into()),
        insn_addr: sym.value,
        insn_len: 1,
        byte_index: 0,
        bit_mask: 0x01,
        is_branch: false,
    }
}

#[test]
fn tiny_boot_budget_is_a_clean_boot_error() {
    let err = rig_with(RigConfig { boot_budget: 10_000, ..RigConfig::default() })
        .err()
        .expect("boot cannot fit in 10k cycles");
    assert!(matches!(err, RigError::BootFailed(_)), "{err}");
}

#[test]
fn tiny_golden_budget_is_a_clean_golden_error() {
    let err = rig_with(RigConfig { golden_budget: 1_000, ..RigConfig::default() })
        .err()
        .expect("no golden run fits in 1k cycles");
    match err {
        RigError::GoldenFailed { mode, .. } => assert_eq!(mode, 0),
        other => panic!("expected GoldenFailed, got {other}"),
    }
}

#[test]
fn golden_budget_is_measured_from_the_snapshot_not_from_reset() {
    // Pin the boundary semantics the RigConfig docs promise: the
    // golden budget covers the golden run alone — boot cycles do not
    // eat into it — and a capture landing exactly on the budget still
    // succeeds (the check is strictly-greater-than).
    let reference = rig_with(RigConfig::default()).expect("rig boots");
    let cycles = reference.golden(0).cycles;
    assert!(cycles > 0);
    assert!(
        reference.boot_cycles() > 0,
        "a zero-cycle boot would make the from-snapshot claim vacuous"
    );

    let exact = rig_with(RigConfig { golden_budget: cycles, ..RigConfig::default() })
        .expect("exact-budget golden capture must succeed");
    assert_eq!(exact.golden(0).cycles, cycles);

    let err = rig_with(RigConfig { golden_budget: cycles / 2, ..RigConfig::default() })
        .err()
        .expect("half the needed cycles cannot fit the golden run");
    match err {
        RigError::GoldenFailed { mode, .. } => assert_eq!(mode, 0),
        other => panic!("expected GoldenFailed, got {other}"),
    }
}

#[test]
fn default_budgets_match_the_former_magic_numbers() {
    let d = RigConfig::default();
    assert_eq!(d.boot_budget, 80_000_000);
    assert_eq!(d.golden_budget, 400_000_000);
    assert!(!d.sanitizer);
    assert_eq!(d.cpus, 1, "golden corpora are captured on a uniprocessor");
}

#[test]
fn cycle_limit_exit_classifies_as_hang() {
    let mut rig = rig_with(RigConfig::default()).expect("rig boots");
    let t = any_target(&rig);
    // The watchdog's view of a run that never stopped consuming its
    // budget — including one reaped by the wall-clock abort flag,
    // which surfaces as the same exit.
    let outcome = rig.classify_exit(&t, 0, 0, RunExit::CycleLimit);
    assert_eq!(outcome, Outcome::Hang);
}

#[test]
fn halt_without_shutdown_report_classifies_as_hang() {
    // Corrupted code wandering into a stray cli;hlt halts the CPU
    // without the kernel ever reporting SHUTDOWN or PANIC: from the
    // hardware watchdog's point of view the system is simply gone.
    // Clearing the logs puts the machine in exactly that state — a
    // halted CPU and an empty monitor log.
    let mut rig = rig_with(RigConfig::default()).expect("rig boots");
    let t = any_target(&rig);
    rig.machine_mut().clear_logs();
    let outcome = rig.classify_exit(&t, 0, 0, RunExit::Halted);
    assert_eq!(outcome, Outcome::Hang);
}
