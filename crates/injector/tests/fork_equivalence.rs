//! A copy-on-write forked rig ([`InjectorRig::fork`]) must be
//! observationally indistinguishable from a fresh-booted one
//! ([`InjectorRig::new`]): same golden runs, and — for arbitrary
//! planned injections — bit-identical run records, metrics deltas, and
//! full post-run architectural state including a digest of all guest
//! memory. Every injection run exercises the fork's snapshot-restore
//! path (each run resets to the shared snapshot) and its bit flips are
//! self-modifying-code writes into pages shared copy-on-write with the
//! base image, so the proptest covers both of the scary cases: restore
//! against an `Arc`-shared baseline and SMC against CoW pages. The
//! post-run state includes a disk digest, so the disk's copy-on-write
//! reset (sector-granular, against the shared post-boot image) is held
//! to the same standard.

use kfi_injector::{plan_campaign, Campaign, InjectorRig, RigConfig, RigShared};
use kfi_kernel::{build_kernel, KernelBuildOptions};
use kfi_machine::Machine;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, Mutex, OnceLock};

/// Two workload modes keep golden capture cheap while still covering
/// the per-mode dimension of the golden store.
const N_MODES: u32 = 2;

struct Setup {
    shared: Arc<RigShared>,
    /// Plan of campaign A over every injectable function.
    plan: Vec<kfi_injector::InjectionTarget>,
}

static SETUP: OnceLock<Setup> = OnceLock::new();
static FORKED: OnceLock<Mutex<InjectorRig>> = OnceLock::new();
static FRESH: OnceLock<Mutex<InjectorRig>> = OnceLock::new();

fn setup() -> &'static Setup {
    SETUP.get_or_init(|| {
        let image = build_kernel(KernelBuildOptions::default()).unwrap();
        let files = kfi_workloads::suite_files().unwrap();
        let shared = RigShared::boot(image, &files, N_MODES, RigConfig::default())
            .expect("shared base boots");
        let functions: Vec<String> = {
            let rig = InjectorRig::fork(&shared).expect("fork");
            rig.image
                .program
                .symbols
                .functions()
                .filter(|s| matches!(s.subsystem.as_deref(), Some("arch" | "fs" | "kernel" | "mm")))
                .map(|s| s.name.clone())
                .collect()
        };
        let rig = InjectorRig::fork(&shared).expect("fork");
        let mut rng = StdRng::seed_from_u64(2003);
        let mut plan = plan_campaign(&rig.image, &functions, Campaign::A, &mut rng);
        plan.truncate(4096);
        Setup { shared, plan }
    })
}

fn forked_rig() -> &'static Mutex<InjectorRig> {
    FORKED.get_or_init(|| Mutex::new(InjectorRig::fork(&setup().shared).expect("fork")))
}

fn fresh_rig() -> &'static Mutex<InjectorRig> {
    FRESH.get_or_init(|| {
        let image = build_kernel(KernelBuildOptions::default()).unwrap();
        let files = kfi_workloads::suite_files().unwrap();
        Mutex::new(
            InjectorRig::new(image, &files, N_MODES, RigConfig::default())
                .expect("fresh rig boots"),
        )
    })
}

/// 64-bit FNV-1a, for the memory digest.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Everything architecturally observable about a post-run machine.
#[derive(Debug, PartialEq)]
struct PostRunState {
    regs: [u32; 8],
    eip: u32,
    eflags: u32,
    cs: u32,
    cr0: u32,
    cr2: u32,
    cr3: u32,
    tsc: u64,
    halted: bool,
    console: Vec<u8>,
    mem_digest: u64,
    /// Digest of the disk image — the fork's disk resets copy-on-write
    /// against the shared post-boot image while the fresh rig's used to
    /// be rebuilt from scratch, and the two must stay byte-identical.
    disk_digest: u64,
    disk_io: (u64, u64),
}

fn capture(m: &mut Machine) -> PostRunState {
    let disk = m.disk.as_ref().expect("disk attached");
    PostRunState {
        regs: m.cpu.regs,
        eip: m.cpu.eip,
        eflags: m.cpu.eflags.bits(),
        cs: m.cpu.cs,
        cr0: m.cpu.cr0,
        cr2: m.cpu.cr2,
        cr3: m.cpu.cr3,
        tsc: m.cpu.tsc,
        halted: m.cpu.halted,
        console: m.console().to_vec(),
        mem_digest: fnv1a(m.mem.slice(0, m.mem.size())),
        disk_digest: fnv1a(disk.bytes()),
        disk_io: disk.io_stats(),
    }
}

#[test]
fn forked_goldens_match_fresh_boot_goldens() {
    let forked = forked_rig().lock().unwrap();
    let fresh = fresh_rig().lock().unwrap();
    assert_eq!(forked.boot_cycles(), fresh.boot_cycles());
    let text_base = fresh.image.program.text.base;
    let text_len = fresh.image.program.text.bytes.len() as u32;
    for mode in 0..N_MODES {
        let (a, b) = (forked.golden(mode), fresh.golden(mode));
        assert_eq!(a.mode, b.mode);
        assert_eq!(a.console, b.console, "mode {mode} golden console");
        assert_eq!(a.results, b.results, "mode {mode} golden results");
        assert_eq!(a.cycles, b.cycles, "mode {mode} golden cycles");
        // Coverage bit-for-bit, probed through the public API.
        for addr in (text_base..text_base + text_len).step_by(7) {
            assert_eq!(a.covers(addr, text_base), b.covers(addr, text_base), "addr {addr:#x}");
        }
    }
    // Exactly one capture per mode happened store-wide, no matter how
    // many rigs forked before this test ran.
    assert_eq!(setup().shared.store().captures(), u64::from(N_MODES));
}

#[test]
fn a_second_fork_is_fresh_not_contaminated() {
    // Dirty a fork with a run, then fork again: the new fork's record
    // for the same target matches a run on the long-lived fresh rig.
    let mut first = InjectorRig::fork(&setup().shared).expect("fork");
    // Pick a target the mode-0 golden run actually covers, so the
    // machines really execute (a NotActivated run never touches them).
    let t = setup()
        .plan
        .iter()
        .find(|t| first.would_activate(t.insn_addr, 0))
        .expect("some planned target activates under mode 0");
    let _ = first.run_one(t, 0);
    let r1 = first.run_one(t, 0);

    let mut second = InjectorRig::fork(&setup().shared).expect("fork");
    let r2 = second.run_one(t, 0);

    let mut fresh = fresh_rig().lock().unwrap();
    let _ = fresh.take_metrics();
    let r3 = fresh.run_one(t, 0);
    assert_eq!(r1, r2, "rerun on a dirty fork == first run on a new fork");
    assert_eq!(r2, r3, "new fork == fresh-booted rig");
    assert_eq!(
        capture(second.machine_mut()),
        capture(fresh.machine_mut()),
        "post-run machine state diverged between fork and fresh boot"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn forked_and_fresh_rigs_agree_on_arbitrary_injections(
        pick in 0usize..4096,
        mode in 0u32..N_MODES,
    ) {
        let setup = setup();
        let t = &setup.plan[pick % setup.plan.len()];

        let mut forked = forked_rig().lock().unwrap();
        let _ = forked.take_metrics();
        let r_fork = forked.run_one(t, mode);
        let d_fork = forked.take_metrics();
        let s_fork = capture(forked.machine_mut());
        drop(forked);

        let mut fresh = fresh_rig().lock().unwrap();
        let _ = fresh.take_metrics();
        let r_fresh = fresh.run_one(t, mode);
        let d_fresh = fresh.take_metrics();
        let s_fresh = capture(fresh.machine_mut());

        let activated = r_fork.activation_tsc.is_some();
        prop_assert_eq!(&r_fork, &r_fresh);
        prop_assert_eq!(d_fork, d_fresh);
        if activated {
            // A NotActivated run never touches the machine, so its
            // state still reflects unrelated earlier cases; only an
            // executed run leaves comparable state behind.
            prop_assert_eq!(s_fork, s_fresh);
        }
    }
}
