//! End-to-end traffic-suite tests: the server-variant kernel boots
//! with the twelve-workload file set, every traffic workload runs to
//! its deterministic checksum, and injections into the new ipc/net
//! handlers activate under the workloads that drive them.

use kfi_injector::{plan_function, Campaign, InjectorRig, RigConfig};
use kfi_kernel::{build_kernel, KernelBuildOptions};
use kfi_workloads::Suite;
use rand::SeedableRng;

fn traffic_rig() -> InjectorRig {
    let image = build_kernel(KernelBuildOptions { server: true, ..Default::default() }).unwrap();
    let files = Suite::Traffic.files().unwrap();
    InjectorRig::new(image, &files, Suite::Traffic.n_modes(), RigConfig::default())
        .expect("server rig boots")
}

#[test]
fn traffic_workloads_report_expected_checksums() {
    let rig = traffic_rig();
    // Checksums derived from the workload sources: echo sums 16 replies
    // (req = i + 0x100, reply = req + 1000, i = 16..=1), netstorm sums
    // 64 datagrams (slot*16 + round over 8x8), forkflood sums 6 rounds
    // of child statuses 3+2+1.
    for (name, expected) in [("echo", 20232u32), ("netstorm", 4896), ("forkflood", 36)] {
        let mode = Suite::Traffic.mode_of(name).unwrap();
        let g = rig.golden(mode);
        assert_eq!(g.results.as_slice(), &[expected][..], "{name} checksum");
        assert!(g.console.contains("runner:"), "{name} console");
    }
    // sysstorm's checksum folds in the (deterministic but layout-
    // dependent) pid; require a successful single report that is not
    // the failure sentinel.
    let g = rig.golden(Suite::Traffic.mode_of("sysstorm").unwrap());
    assert_eq!(g.results.len(), 1, "sysstorm reports once");
    assert!(g.results[0] > 1, "sysstorm hit its fail path");
}

#[test]
fn paper_modes_unchanged_in_traffic_suite() {
    // Modes 0..8 still run the paper workloads in the same order.
    let rig = traffic_rig();
    let g = rig.golden(Suite::Traffic.mode_of("pipe").unwrap());
    assert_eq!(g.results.len(), 1);
    assert!(g.results[0] > 1);
}

#[test]
fn traffic_workloads_activate_ipc_and_net_targets() {
    let mut rig = traffic_rig();
    for (func, driver) in
        [("sys_msgsnd", "echo"), ("sys_msgrcv", "echo"), ("sys_sock_send", "netstorm")]
    {
        let addr = rig.image.program.symbols.addr_of(func).unwrap();
        let mode = Suite::Traffic.mode_of(driver).unwrap();
        assert!(rig.would_activate(addr, mode), "{func} not covered by {driver}");
    }
    // An injected fault in the send path must not be silent under echo:
    // the run deviates from the golden somehow (any outcome but
    // NotActivated is fine — the point is the handler is exercised).
    let mut rng = rand::rngs::StdRng::seed_from_u64(8);
    let targets = plan_function(&rig.image, "sys_msgsnd", Campaign::A, &mut rng);
    assert!(!targets.is_empty());
    let rec = rig.run_one(&targets[0], Suite::Traffic.mode_of("echo").unwrap());
    assert_ne!(rec.outcome, kfi_injector::Outcome::NotActivated);
}
