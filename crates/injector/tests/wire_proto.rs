//! Wire-codec fuzz coverage: proptest roundtrips for every protocol
//! frame type — run records and the distributed-runner messages
//! (handshake, heartbeat, lease grant/ack, job results, chaos
//! controls) — plus corrupted-frame rejection and mid-stream resync.

use kfi_injector::wire::{decode_msg, encode_msg, Msg, PROTOCOL_VERSION};
use kfi_injector::{Campaign, CrashInfo, FsvKind, InjectionTarget, Outcome, RunRecord, Severity};
use kfi_trace::frame::{write_frame, StreamDecoder};
use kfi_trace::Metrics;
use proptest::prelude::*;

fn campaign(tag: u8) -> Campaign {
    match tag % 3 {
        0 => Campaign::A,
        1 => Campaign::B,
        _ => Campaign::C,
    }
}

/// A run record exercising every outcome shape, derived from a handful
/// of fuzzed scalars.
fn record(v: u64, outcome_tag: u8) -> RunRecord {
    let outcome = match outcome_tag % 6 {
        0 => Outcome::NotActivated,
        1 => Outcome::NotManifested,
        2 => Outcome::Hang,
        3 => Outcome::RigFault(format!("worker lost at {v}")),
        4 => Outcome::FailSilenceViolation(if v % 2 == 0 {
            FsvKind::ConsoleMismatch
        } else {
            FsvKind::WrongResult {
                expected: vec![v as u32, (v >> 16) as u32],
                got: vec![!v as u32],
            }
        }),
        _ => Outcome::Crash(CrashInfo {
            cause: (v % 14) as u32,
            eip: 0xc010_0000u32.wrapping_add(v as u32),
            function: if v % 2 == 0 { Some(format!("f{v}")) } else { None },
            subsystem: "fs".into(),
            latency: v % 100_000,
            severity: match v % 3 {
                0 => Severity::Normal,
                1 => Severity::Severe,
                _ => Severity::MostSevere,
            },
            triple_fault: v % 5 == 0,
        }),
    };
    RunRecord {
        target: InjectionTarget {
            campaign: campaign(outcome_tag),
            function: format!("fn_{}", v % 97),
            subsystem: if v % 2 == 0 { "ipc".into() } else { "net".into() },
            insn_addr: 0xc000_0000 | (v as u32 & 0xf_ffff),
            insn_len: 1 + (v % 6) as u8,
            byte_index: (v % 6) as usize,
            bit_mask: 1 << (v % 8),
            is_branch: v % 3 == 0,
        },
        mode: (v % 3) as u32,
        outcome,
        activation_tsc: if v % 4 == 0 { None } else { Some(v) },
        run_cycles: v.wrapping_mul(31),
        sanitizer_violations: v % 5,
    }
}

fn metrics(v: u64) -> Metrics {
    let mut m = Metrics::default();
    m.runs = 1;
    m.instructions = v % 1_000_000;
    m.leases_expired = v % 3;
    m.workers_respawned = v % 2;
    m.chaos_kills = v % 4;
    m.wire_bytes_streamed = v % 50_000;
    m.run_cycles.record(v % 1_000_000);
    m
}

/// Every message shape derivable from two fuzzed scalars.
fn messages(v: u64, tag: u8) -> Vec<Msg> {
    vec![
        Msg::Hello { protocol: PROTOCOL_VERSION, fingerprint: v, seed: !v },
        Msg::LeaseGrant {
            lease: v,
            campaign: campaign(tag),
            indices: (0..(v % 7)).map(|i| v.wrapping_add(i) % 10_000).collect(),
        },
        Msg::LeaseAck { lease: v },
        Msg::Heartbeat { jobs_done: v },
        Msg::JobDone {
            lease: v % 100,
            index: v % 10_000,
            record: record(v, tag),
            metrics: Box::new(metrics(v)),
        },
        Msg::Stall,
        Msg::Die { code: (v % 256) as u32 },
        Msg::Shutdown,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every message type roundtrips exactly, consuming every byte it
    /// produced; every strict prefix is rejected as truncated.
    #[test]
    fn every_message_roundtrips(v in any::<u64>(), tag in any::<u8>()) {
        for msg in messages(v, tag) {
            let mut buf = Vec::new();
            encode_msg(&mut buf, &msg);
            let mut pos = 0;
            let back = decode_msg(&buf, &mut pos).expect("roundtrip");
            prop_assert_eq!(&back, &msg);
            prop_assert_eq!(pos, buf.len(), "decoder must consume exactly its encoding");
            for cut in 0..buf.len() {
                let mut pos = 0;
                prop_assert!(
                    decode_msg(&buf[..cut], &mut pos).is_err(),
                    "prefix of length {} must not decode",
                    cut
                );
            }
        }
    }

    /// A single corrupted byte anywhere in a framed message either
    /// fails the CRC (frame never reaches the decoder) or — if it
    /// lands in the length prefix — yields a different frame boundary,
    /// never a silently different message.
    #[test]
    fn corrupted_frames_never_decode_silently(
        v in any::<u64>(),
        tag in any::<u8>(),
        hit in any::<u16>(),
        flip in 1u8..255,
    ) {
        for msg in messages(v, tag) {
            let mut payload = Vec::new();
            encode_msg(&mut payload, &msg);
            let mut framed = Vec::new();
            write_frame(&mut framed, &payload);
            let mut bad = framed.clone();
            let i = hit as usize % bad.len();
            bad[i] ^= flip;

            let mut dec = StreamDecoder::new();
            dec.push(&bad);
            dec.finish();
            while let Some(p) = dec.next_frame() {
                // Resync can surface small false-positive windows (an
                // 8-zero-byte run inside a payload parses as a valid
                // empty frame), but those die at the message layer.
                // What must never happen is a *decodable message* other
                // than the one originally sent.
                let mut pos = 0;
                if let Ok(m) = decode_msg(&p, &mut pos) {
                    prop_assert_eq!(&m, &msg, "corruption produced a different valid message");
                }
            }
        }
    }

    /// A reader joining a stream mid-flight (arbitrary garbage prefix,
    /// then well-formed frames, fed in arbitrary chunk sizes) recovers
    /// every following message in order.
    #[test]
    fn midstream_resync_recovers_following_messages(
        v in any::<u64>(),
        tag in any::<u8>(),
        garbage in collection::vec(any::<u8>(), 0..64),
        chunk in 1usize..97,
    ) {
        let msgs = messages(v, tag);
        let mut stream = garbage.clone();
        for msg in &msgs {
            let mut payload = Vec::new();
            encode_msg(&mut payload, msg);
            write_frame(&mut stream, &payload);
        }
        let mut dec = StreamDecoder::new();
        for piece in stream.chunks(chunk) {
            dec.push(piece);
        }
        dec.finish();
        let mut got = Vec::new();
        while let Some(p) = dec.next_frame() {
            let mut pos = 0;
            if let Ok(m) = decode_msg(&p, &mut pos) {
                got.push(m);
            }
        }
        // The garbage prefix may happen to frame-align and decode; the
        // real messages must all survive as the tail.
        prop_assert!(got.len() >= msgs.len(), "lost messages after resync");
        prop_assert_eq!(&got[got.len() - msgs.len()..], &msgs[..]);
    }
}
