//! End-to-end injection tests: plan real campaigns, run them on the
//! booted kernel, and check the classifier's work.

use kfi_injector::{
    plan_function, Campaign, FsvKind, InjectionTarget, InjectorRig, Outcome, RigConfig,
};
use kfi_kernel::layout::causes;
use kfi_kernel::{build_kernel, KernelBuildOptions};
use rand::SeedableRng;

fn rig() -> InjectorRig {
    let image = build_kernel(KernelBuildOptions::default()).unwrap();
    let files = kfi_workloads::suite_files().unwrap();
    InjectorRig::new(image, &files, 3, RigConfig::default()).expect("rig boots")
}

#[test]
fn golden_runs_are_captured() {
    let rig = rig();
    for mode in 0..3 {
        let g = rig.golden(mode);
        assert!(!g.results.is_empty(), "mode {mode}");
        assert!(g.cycles > 10_000);
        assert!(g.console.contains("runner:"));
    }
}

#[test]
fn coverage_predicts_activation() {
    let rig = rig();
    let pr = rig.image.program.symbols.addr_of("pipe_read").unwrap();
    assert!(rig.would_activate(pr, 0));
    let rb = rig.image.program.symbols.addr_of("sys_reboot").unwrap();
    assert!(rig.would_activate(rb, 1));
}

#[test]
fn null_branch_reversal_crashes_with_null_pointer() {
    // Campaign C on the BUG() assertion branch in pipe_read: reversing
    // the branch executes ud2a -> invalid opcode (the dominant campaign
    // C crash cause in the paper's Figure 6).
    let mut rig = rig();
    let targets = {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        plan_function(&rig.image, "pipe_read", Campaign::C, &mut rng)
    };
    assert!(!targets.is_empty());
    let text = rig.image.program.text.clone();
    let bug_branch: Vec<&InjectionTarget> = targets
        .iter()
        .filter(|t| {
            let off = (t.insn_addr + t.insn_len as u32 - text.base) as usize;
            text.bytes.get(off..off + 2) == Some(&[0x0f, 0x0b][..])
        })
        .collect();
    assert!(!bug_branch.is_empty(), "pipe_read must contain a BUG() assertion");
    let rec = rig.run_one(bug_branch[0], 0); // context1 drives pipe_read
    match &rec.outcome {
        Outcome::Crash(info) => {
            assert_eq!(info.cause, causes::INVALID_OP, "{info:?}");
            assert_eq!(info.subsystem, "fs", "{info:?}");
            assert_eq!(info.function.as_deref(), Some("pipe_read"));
            assert!(info.latency < 1000, "BUG fires immediately: {info:?}");
        }
        other => panic!("expected invalid-opcode crash, got {other:?}"),
    }
}

#[test]
fn unactivated_target_is_not_activated() {
    let mut rig = rig();
    // dhry (mode 1) never reads pipes.
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let targets = plan_function(&rig.image, "pipe_read", Campaign::A, &mut rng);
    let rec = rig.run_one(&targets[0], 1);
    assert_eq!(rec.outcome, Outcome::NotActivated);
    assert_eq!(rec.run_cycles, 0, "fast path must skip the run");
}

#[test]
fn campaign_a_sample_produces_plausible_mix() {
    let mut rig = rig();
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let mut targets = Vec::new();
    for f in ["pipe_read", "pipe_write", "sys_read", "do_generic_file_read"] {
        targets.extend(plan_function(&rig.image, f, Campaign::A, &mut rng));
    }
    let mut activated = 0;
    let mut crashes = 0;
    let mut not_manifested = 0;
    for t in targets.iter().take(60) {
        let rec = rig.run_one(t, 0);
        if rec.outcome.activated() {
            activated += 1;
        }
        match rec.outcome {
            Outcome::Crash(_) => crashes += 1,
            Outcome::NotManifested => not_manifested += 1,
            _ => {}
        }
    }
    assert!(activated > 5, "nothing activated");
    assert!(crashes > 0, "no crashes at all is implausible");
    assert!(not_manifested > 0, "everything crashed — also implausible");
}

#[test]
fn crash_latency_and_propagation_fields_are_sane() {
    let mut rig = rig();
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let targets = plan_function(&rig.image, "do_generic_file_read", Campaign::A, &mut rng);
    let mut seen_crash = false;
    for t in targets.iter().take(80) {
        let rec = rig.run_one(t, 2); // fstime drives file reads
        if let Outcome::Crash(info) = &rec.outcome {
            seen_crash = true;
            assert!(info.latency < 500_000_000);
            assert!(!info.subsystem.is_empty());
            assert!(info.cause >= 1 && info.cause <= 16);
        }
    }
    assert!(seen_crash, "80 random byte corruptions should crash at least once");
}

#[test]
fn fsv_detected_when_results_differ() {
    let mut rig = rig();
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let mut targets = Vec::new();
    for f in ["pipe_read", "pipe_write", "sys_read", "sys_write"] {
        targets.extend(plan_function(&rig.image, f, Campaign::C, &mut rng));
    }
    let mut fsv = 0;
    let mut ran = 0;
    for t in &targets {
        let rec = rig.run_one(t, 0);
        if rec.outcome.activated() {
            ran += 1;
        }
        if let Outcome::FailSilenceViolation(kind) = &rec.outcome {
            fsv += 1;
            if let FsvKind::WrongResult { expected, got } = kind {
                assert_ne!(expected, got);
            }
        }
    }
    assert!(ran > 3, "too few activated C targets");
    assert!(fsv > 0, "reversed error-check branches must cause FSVs");
}

#[test]
fn severity_assessment_levels() {
    let mut rig = rig();
    // Healthy disk: an (artificial) crash state assesses as Normal.
    let (sev, report) = rig.assess_severity();
    assert_eq!(sev, kfi_injector::Severity::Normal, "{report:?}");

    // Corrupt the superblock magic: unrecoverable -> MostSevere.
    {
        let m = rig.machine_mut();
        let disk = m.disk.as_mut().unwrap();
        disk.bytes_mut()[1024] ^= 0xff;
    }
    let (sev, report) = rig.assess_severity();
    assert_eq!(sev, kfi_injector::Severity::MostSevere, "{report:?}");
}

#[test]
fn severity_fixable_corruption_is_severe() {
    let mut rig = rig();
    // Leak a block in the bitmap: fsck fixes it -> Severe (the system
    // still boots).
    {
        let m = rig.machine_mut();
        let disk = m.disk.as_mut().unwrap();
        let blk = 2000u32;
        disk.bytes_mut()[2 * 1024 + (blk / 8) as usize] |= 1 << (blk % 8);
    }
    let (sev, report) = rig.assess_severity();
    assert_eq!(sev, kfi_injector::Severity::Severe, "{report:?}");
}

#[test]
fn corrupted_init_binary_is_most_severe() {
    let mut rig = rig();
    // Flip a bit inside /init's content on disk: manifest checksum
    // mismatch -> reinstall territory (the paper's Table 5 case 1).
    {
        let m = rig.machine_mut();
        let disk = m.disk.as_mut().unwrap();
        // /init's first data block: find the KBIN magic "KBIN".
        let bytes = disk.bytes_mut();
        let pos = (12 * 1024..bytes.len() - 4)
            .find(|&i| &bytes[i..i + 4] == b"KBIN")
            .expect("a KBIN header on disk");
        bytes[pos + 20] ^= 1; // corrupt payload, not the header
    }
    let (sev, _) = rig.assess_severity();
    assert_eq!(sev, kfi_injector::Severity::MostSevere);
}

#[test]
fn triple_fault_runs_classify_and_reboot_cleanly() {
    // Corrupting printk makes the oops path recurse into the corrupted
    // code: a realistic crash-handler cascade ending in a triple fault.
    // The severity reboot-test must still pass (the disk is fine).
    let mut rig = rig();
    let pk = rig.image.program.symbols.lookup("printk").unwrap().clone();
    let t = kfi_injector::InjectionTarget {
        campaign: Campaign::A,
        function: "printk".into(),
        subsystem: pk.subsystem.clone().unwrap(),
        insn_addr: pk.value + 3,
        insn_len: 1,
        byte_index: 0,
        bit_mask: 0x10,
        is_branch: false,
    };
    let rec = rig.run_one(&t, 0);
    if let Outcome::Crash(info) = &rec.outcome {
        // Whatever the cause, a clean disk must never be "most severe".
        assert_ne!(info.severity, kfi_injector::Severity::MostSevere, "{info:?}");
    }
}
