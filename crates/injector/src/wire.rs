//! Binary wire format for [`RunRecord`] — the payload of the campaign
//! run journal.
//!
//! Built on the same LEB128 varint primitives as the `kfi-trace` event
//! codec ([`kfi_trace::codec`]); strings are length-prefixed UTF-8.
//! [`decode_record`] inverts [`encode_record`] exactly, which the
//! journaled checkpoint/resume path relies on for bit-identical
//! resumed campaigns.

use crate::outcome::{CrashInfo, FsvKind, Outcome, RunRecord, Severity};
use crate::target::{Campaign, InjectionTarget};
use kfi_trace::codec::{get_varint, put_varint, CodecError};

fn put_string(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn get_string(buf: &[u8], pos: &mut usize) -> Result<String, CodecError> {
    let len = get_varint(buf, pos)? as usize;
    let end = pos.checked_add(len).filter(|e| *e <= buf.len()).ok_or(CodecError::Truncated)?;
    let s = std::str::from_utf8(&buf[*pos..end]).map_err(|_| CodecError::Truncated)?;
    *pos = end;
    Ok(s.to_string())
}

fn get_byte(buf: &[u8], pos: &mut usize) -> Result<u8, CodecError> {
    let b = *buf.get(*pos).ok_or(CodecError::Truncated)?;
    *pos += 1;
    Ok(b)
}

const OUTCOME_NOT_ACTIVATED: u8 = 0;
const OUTCOME_NOT_MANIFESTED: u8 = 1;
const OUTCOME_FSV_WRONG_RESULT: u8 = 2;
const OUTCOME_FSV_CONSOLE: u8 = 3;
const OUTCOME_FSV_CORRUPTION: u8 = 4;
const OUTCOME_CRASH: u8 = 5;
const OUTCOME_HANG: u8 = 6;
const OUTCOME_RIG_FAULT: u8 = 7;

fn severity_code(s: Severity) -> u8 {
    match s {
        Severity::Normal => 0,
        Severity::Severe => 1,
        Severity::MostSevere => 2,
    }
}

fn severity_of(code: u8) -> Result<Severity, CodecError> {
    match code {
        0 => Ok(Severity::Normal),
        1 => Ok(Severity::Severe),
        2 => Ok(Severity::MostSevere),
        _ => Err(CodecError::Truncated),
    }
}

/// Appends the wire encoding of one record.
pub fn encode_record(out: &mut Vec<u8>, r: &RunRecord) {
    let t = &r.target;
    out.push(t.campaign.letter() as u8);
    put_string(out, &t.function);
    put_string(out, &t.subsystem);
    put_varint(out, t.insn_addr as u64);
    put_varint(out, t.insn_len as u64);
    put_varint(out, t.byte_index as u64);
    out.push(t.bit_mask);
    out.push(t.is_branch as u8);
    put_varint(out, r.mode as u64);
    match &r.outcome {
        Outcome::NotActivated => out.push(OUTCOME_NOT_ACTIVATED),
        Outcome::NotManifested => out.push(OUTCOME_NOT_MANIFESTED),
        Outcome::FailSilenceViolation(FsvKind::WrongResult { expected, got }) => {
            out.push(OUTCOME_FSV_WRONG_RESULT);
            put_varint(out, expected.len() as u64);
            for v in expected {
                put_varint(out, *v as u64);
            }
            put_varint(out, got.len() as u64);
            for v in got {
                put_varint(out, *v as u64);
            }
        }
        Outcome::FailSilenceViolation(FsvKind::ConsoleMismatch) => out.push(OUTCOME_FSV_CONSOLE),
        Outcome::FailSilenceViolation(FsvKind::SilentCorruption { detail }) => {
            out.push(OUTCOME_FSV_CORRUPTION);
            put_string(out, detail);
        }
        Outcome::Crash(i) => {
            out.push(OUTCOME_CRASH);
            put_varint(out, i.cause as u64);
            put_varint(out, i.eip as u64);
            match &i.function {
                None => out.push(0),
                Some(f) => {
                    out.push(1);
                    put_string(out, f);
                }
            }
            put_string(out, &i.subsystem);
            put_varint(out, i.latency);
            out.push(severity_code(i.severity));
            out.push(i.triple_fault as u8);
        }
        Outcome::Hang => out.push(OUTCOME_HANG),
        Outcome::RigFault(msg) => {
            out.push(OUTCOME_RIG_FAULT);
            put_string(out, msg);
        }
    }
    match r.activation_tsc {
        None => out.push(0),
        Some(t) => {
            out.push(1);
            put_varint(out, t);
        }
    }
    put_varint(out, r.run_cycles);
    put_varint(out, r.sanitizer_violations);
}

/// Decodes one record written by [`encode_record`], advancing `pos`.
///
/// # Errors
///
/// [`CodecError`] on truncation or an invalid tag/letter.
pub fn decode_record(buf: &[u8], pos: &mut usize) -> Result<RunRecord, CodecError> {
    let campaign = match get_byte(buf, pos)? {
        b'A' => Campaign::A,
        b'B' => Campaign::B,
        b'C' => Campaign::C,
        other => return Err(CodecError::BadTag { offset: *pos - 1, tag: other }),
    };
    let function = get_string(buf, pos)?;
    let subsystem = get_string(buf, pos)?;
    let insn_addr = get_varint(buf, pos)? as u32;
    let insn_len = get_varint(buf, pos)? as u8;
    let byte_index = get_varint(buf, pos)? as usize;
    let bit_mask = get_byte(buf, pos)?;
    let is_branch = get_byte(buf, pos)? != 0;
    let mode = get_varint(buf, pos)? as u32;
    let outcome_tag_offset = *pos;
    let outcome = match get_byte(buf, pos)? {
        OUTCOME_NOT_ACTIVATED => Outcome::NotActivated,
        OUTCOME_NOT_MANIFESTED => Outcome::NotManifested,
        OUTCOME_FSV_WRONG_RESULT => {
            let n = get_varint(buf, pos)? as usize;
            let mut expected = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                expected.push(get_varint(buf, pos)? as u32);
            }
            let n = get_varint(buf, pos)? as usize;
            let mut got = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                got.push(get_varint(buf, pos)? as u32);
            }
            Outcome::FailSilenceViolation(FsvKind::WrongResult { expected, got })
        }
        OUTCOME_FSV_CONSOLE => Outcome::FailSilenceViolation(FsvKind::ConsoleMismatch),
        OUTCOME_FSV_CORRUPTION => Outcome::FailSilenceViolation(FsvKind::SilentCorruption {
            detail: get_string(buf, pos)?,
        }),
        OUTCOME_CRASH => {
            let cause = get_varint(buf, pos)? as u32;
            let eip = get_varint(buf, pos)? as u32;
            let function = match get_byte(buf, pos)? {
                0 => None,
                _ => Some(get_string(buf, pos)?),
            };
            let subsystem = get_string(buf, pos)?;
            let latency = get_varint(buf, pos)?;
            let severity = severity_of(get_byte(buf, pos)?)?;
            let triple_fault = get_byte(buf, pos)? != 0;
            Outcome::Crash(CrashInfo {
                cause,
                eip,
                function,
                subsystem,
                latency,
                severity,
                triple_fault,
            })
        }
        OUTCOME_HANG => Outcome::Hang,
        OUTCOME_RIG_FAULT => Outcome::RigFault(get_string(buf, pos)?),
        other => return Err(CodecError::BadTag { offset: outcome_tag_offset, tag: other }),
    };
    let activation_tsc = match get_byte(buf, pos)? {
        0 => None,
        _ => Some(get_varint(buf, pos)?),
    };
    let run_cycles = get_varint(buf, pos)?;
    let sanitizer_violations = get_varint(buf, pos)?;
    Ok(RunRecord {
        target: InjectionTarget {
            campaign,
            function,
            subsystem,
            insn_addr,
            insn_len,
            byte_index,
            bit_mask,
            is_branch,
        },
        mode,
        outcome,
        activation_tsc,
        run_cycles,
        sanitizer_violations,
    })
}

/// Version of the coordinator↔worker protocol. A worker whose
/// [`Msg::Hello`] carries a different version is reaped immediately —
/// mixed builds must never exchange records.
pub const PROTOCOL_VERSION: u32 = 1;

const MSG_HELLO: u8 = 1;
const MSG_LEASE_GRANT: u8 = 2;
const MSG_LEASE_ACK: u8 = 3;
const MSG_HEARTBEAT: u8 = 4;
const MSG_JOB_DONE: u8 = 5;
const MSG_STALL: u8 = 6;
const MSG_DIE: u8 = 7;
const MSG_SHUTDOWN: u8 = 8;

/// One coordinator↔worker protocol message. Each is CRC-framed on the
/// pipe (`kfi_trace::frame`); the payload is this tagged encoding.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// Worker → coordinator, first frame after spawn: proves liveness
    /// and that both sides computed the same plan.
    Hello {
        /// Must equal [`PROTOCOL_VERSION`].
        protocol: u32,
        /// Fingerprint of the campaign plan the worker derived from its
        /// CLI config — must match the coordinator's own.
        fingerprint: u64,
        /// Campaign seed, double-checking the fingerprint.
        seed: u64,
    },
    /// Coordinator → worker: a chunk of plan indices to execute under
    /// the given lease.
    LeaseGrant {
        /// Monotonic lease id; stale results quote it and are dropped.
        lease: u64,
        /// Which campaign the indices index into.
        campaign: Campaign,
        /// Plan indices to run, ascending.
        indices: Vec<u64>,
    },
    /// Worker → coordinator: the lease was received and work started.
    LeaseAck {
        /// The lease being acknowledged.
        lease: u64,
    },
    /// Worker → coordinator, periodic liveness signal.
    Heartbeat {
        /// Jobs completed so far in this worker's lifetime.
        jobs_done: u64,
    },
    /// Worker → coordinator: one plan index finished.
    JobDone {
        /// Lease the job was granted under.
        lease: u64,
        /// Plan index the record belongs to.
        index: u64,
        /// The classified run.
        record: RunRecord,
        /// The run's metrics delta.
        metrics: Box<kfi_trace::Metrics>,
    },
    /// Coordinator → worker (chaos harness): stop heartbeating and park
    /// forever, simulating a livelocked worker.
    Stall,
    /// Coordinator → worker (chaos harness): exit with the given code,
    /// simulating a worker crash.
    Die {
        /// Process exit code to die with.
        code: u32,
    },
    /// Coordinator → worker: campaign over, flush and exit cleanly.
    Shutdown,
}

/// Appends the wire encoding of one protocol message.
pub fn encode_msg(out: &mut Vec<u8>, msg: &Msg) {
    match msg {
        Msg::Hello { protocol, fingerprint, seed } => {
            out.push(MSG_HELLO);
            put_varint(out, *protocol as u64);
            put_varint(out, *fingerprint);
            put_varint(out, *seed);
        }
        Msg::LeaseGrant { lease, campaign, indices } => {
            out.push(MSG_LEASE_GRANT);
            put_varint(out, *lease);
            out.push(campaign.letter() as u8);
            put_varint(out, indices.len() as u64);
            for i in indices {
                put_varint(out, *i);
            }
        }
        Msg::LeaseAck { lease } => {
            out.push(MSG_LEASE_ACK);
            put_varint(out, *lease);
        }
        Msg::Heartbeat { jobs_done } => {
            out.push(MSG_HEARTBEAT);
            put_varint(out, *jobs_done);
        }
        Msg::JobDone { lease, index, record, metrics } => {
            out.push(MSG_JOB_DONE);
            put_varint(out, *lease);
            put_varint(out, *index);
            encode_record(out, record);
            metrics.encode_into(out);
        }
        Msg::Stall => out.push(MSG_STALL),
        Msg::Die { code } => {
            out.push(MSG_DIE);
            put_varint(out, *code as u64);
        }
        Msg::Shutdown => out.push(MSG_SHUTDOWN),
    }
}

/// Decodes one message written by [`encode_msg`], advancing `pos`.
///
/// # Errors
///
/// [`CodecError`] on truncation or an invalid tag/letter.
pub fn decode_msg(buf: &[u8], pos: &mut usize) -> Result<Msg, CodecError> {
    let tag_offset = *pos;
    match get_byte(buf, pos)? {
        MSG_HELLO => Ok(Msg::Hello {
            protocol: get_varint(buf, pos)? as u32,
            fingerprint: get_varint(buf, pos)?,
            seed: get_varint(buf, pos)?,
        }),
        MSG_LEASE_GRANT => {
            let lease = get_varint(buf, pos)?;
            let letter_offset = *pos;
            let campaign = match get_byte(buf, pos)? {
                b'A' => Campaign::A,
                b'B' => Campaign::B,
                b'C' => Campaign::C,
                other => return Err(CodecError::BadTag { offset: letter_offset, tag: other }),
            };
            let n = get_varint(buf, pos)? as usize;
            let mut indices = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                indices.push(get_varint(buf, pos)?);
            }
            Ok(Msg::LeaseGrant { lease, campaign, indices })
        }
        MSG_LEASE_ACK => Ok(Msg::LeaseAck { lease: get_varint(buf, pos)? }),
        MSG_HEARTBEAT => Ok(Msg::Heartbeat { jobs_done: get_varint(buf, pos)? }),
        MSG_JOB_DONE => {
            let lease = get_varint(buf, pos)?;
            let index = get_varint(buf, pos)?;
            let record = decode_record(buf, pos)?;
            let metrics = Box::new(kfi_trace::Metrics::decode_from(buf, pos)?);
            Ok(Msg::JobDone { lease, index, record, metrics })
        }
        MSG_STALL => Ok(Msg::Stall),
        MSG_DIE => Ok(Msg::Die { code: get_varint(buf, pos)? as u32 }),
        MSG_SHUTDOWN => Ok(Msg::Shutdown),
        other => Err(CodecError::BadTag { offset: tag_offset, tag: other }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(campaign: Campaign) -> InjectionTarget {
        InjectionTarget {
            campaign,
            function: "do_page_fault".into(),
            subsystem: "arch".into(),
            insn_addr: 0xc010_2040,
            insn_len: 5,
            byte_index: 2,
            bit_mask: 0x08,
            is_branch: campaign != Campaign::A,
        }
    }

    fn all_outcomes() -> Vec<Outcome> {
        vec![
            Outcome::NotActivated,
            Outcome::NotManifested,
            Outcome::FailSilenceViolation(FsvKind::WrongResult {
                expected: vec![1, 2, 3],
                got: vec![],
            }),
            Outcome::FailSilenceViolation(FsvKind::ConsoleMismatch),
            Outcome::FailSilenceViolation(FsvKind::SilentCorruption {
                detail: "inode 5: size mismatch".into(),
            }),
            Outcome::Crash(CrashInfo {
                cause: 3,
                eip: 0xc010_aaaa,
                function: Some("schedule".into()),
                subsystem: "kernel".into(),
                latency: 123_456,
                severity: Severity::MostSevere,
                triple_fault: true,
            }),
            Outcome::Crash(CrashInfo {
                cause: 1,
                eip: 0,
                function: None,
                subsystem: "?".into(),
                latency: 0,
                severity: Severity::Normal,
                triple_fault: false,
            }),
            Outcome::Hang,
            Outcome::RigFault("worker panicked: index out of bounds".into()),
        ]
    }

    #[test]
    fn roundtrip_every_outcome_shape() {
        for (i, outcome) in all_outcomes().into_iter().enumerate() {
            let rec = RunRecord {
                target: target([Campaign::A, Campaign::B, Campaign::C][i % 3]),
                mode: i as u32,
                outcome,
                activation_tsc: if i % 2 == 0 { Some(1 << 40) } else { None },
                run_cycles: 987_654_321,
                sanitizer_violations: i as u64,
            };
            let mut buf = Vec::new();
            encode_record(&mut buf, &rec);
            let mut pos = 0;
            let back = decode_record(&buf, &mut pos).expect("decodes");
            assert_eq!(pos, buf.len());
            assert_eq!(back, rec);
        }
    }

    #[test]
    fn msg_roundtrip_every_variant() {
        let mut metrics = kfi_trace::Metrics::default();
        metrics.runs = 1;
        metrics.instructions = 1 << 33;
        let msgs = vec![
            Msg::Hello { protocol: PROTOCOL_VERSION, fingerprint: 0xDEAD_BEEF_0BAD_F00D, seed: 11 },
            Msg::LeaseGrant { lease: 7, campaign: Campaign::B, indices: vec![0, 5, 1 << 40] },
            Msg::LeaseGrant { lease: 8, campaign: Campaign::C, indices: vec![] },
            Msg::LeaseAck { lease: 7 },
            Msg::Heartbeat { jobs_done: 99 },
            Msg::JobDone {
                lease: 7,
                index: 3,
                record: RunRecord {
                    target: target(Campaign::A),
                    mode: 2,
                    outcome: Outcome::Hang,
                    activation_tsc: Some(5),
                    run_cycles: 100,
                    sanitizer_violations: 0,
                },
                metrics: Box::new(metrics),
            },
            Msg::Stall,
            Msg::Die { code: 3 },
            Msg::Shutdown,
        ];
        for msg in msgs {
            let mut buf = Vec::new();
            encode_msg(&mut buf, &msg);
            let mut pos = 0;
            let back = decode_msg(&buf, &mut pos).expect("decodes");
            assert_eq!(pos, buf.len(), "decode must consume exactly what encode wrote");
            assert_eq!(back, msg);
            // Truncation anywhere errors instead of panicking.
            for cut in 0..buf.len() {
                let mut p = 0;
                let _ = decode_msg(&buf[..cut], &mut p);
            }
        }
    }

    #[test]
    fn msg_bad_tag_rejected() {
        let mut pos = 0;
        assert!(decode_msg(&[0xEE], &mut pos).is_err());
        let mut pos = 0;
        assert!(decode_msg(&[], &mut pos).is_err());
        // LeaseGrant with an invalid campaign letter.
        let mut buf = vec![MSG_LEASE_GRANT];
        put_varint(&mut buf, 1);
        buf.push(b'Z');
        let mut pos = 0;
        assert!(decode_msg(&buf, &mut pos).is_err());
    }

    #[test]
    fn truncation_never_panics() {
        let rec = RunRecord {
            target: target(Campaign::B),
            mode: 3,
            outcome: all_outcomes().remove(5),
            activation_tsc: Some(42),
            run_cycles: 9,
            sanitizer_violations: 0,
        };
        let mut buf = Vec::new();
        encode_record(&mut buf, &rec);
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert!(decode_record(&buf[..cut], &mut pos).is_err());
        }
    }
}
