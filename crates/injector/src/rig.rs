//! The injection rig: boot-snapshot management, golden runs, coverage,
//! single-run execution and outcome classification.

use crate::outcome::{CrashInfo, FsvKind, Outcome, RunRecord, Severity};
use crate::target::InjectionTarget;
use kfi_kernel::layout::{causes, events};
use kfi_kernel::{boot, fsck, mkfs::FileSpec, BootConfig, FsckReport, KernelImage};
use kfi_machine::{
    Machine, MachineConfig, MonitorEvent, Ramdisk, RunExit, Snapshot, StepEvent, TrapRecord, Vector,
};
use kfi_trace::{outcome as trace_outcome, subsystem as trace_subsystem};
use kfi_trace::{Event, EventKind, Metrics, TraceSink};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Rig configuration.
#[derive(Debug, Clone, Copy)]
pub struct RigConfig {
    /// Multiplier on the golden run length for the per-injection-run
    /// hang watchdog: each run's cycle budget is
    /// `golden.cycles * budget_factor + budget_slack`. This budget
    /// governs *injection* runs only — the golden capture itself is
    /// watched by [`RigConfig::golden_budget`] (it has no golden run to
    /// derive a multiplier from).
    pub budget_factor: u64,
    /// Extra flat cycle budget per injection run, added on top of the
    /// `budget_factor` multiple (see there).
    pub budget_slack: u64,
    /// Cycles attributed to injector↔kernel routine switching,
    /// subtracted from raw crash latencies (paper §5.3). The trap
    /// delivery itself costs a fixed 40 cycles in the machine model.
    pub switch_overhead: u64,
    /// Whether the machine's decoded-instruction cache is enabled
    /// (default true; the off position is the reference path for the
    /// cached-vs-uncached equivalence tests).
    pub decode_cache: bool,
    /// Whether the machine's basic-block execution engine is enabled
    /// (default true; takes effect only together with `decode_cache` —
    /// see [`kfi_machine::MachineConfig::block_engine`]). Campaign
    /// results, including the golden CSV, are bit-identical either way.
    pub block_engine: bool,
    /// Whether the block engine chains block exits and validates
    /// translations once per entry (default true; takes effect only
    /// together with `block_engine` — see
    /// [`kfi_machine::MachineConfig::block_chain`]). Campaign results,
    /// including the golden CSV, are bit-identical either way.
    pub block_chain: bool,
    /// Cycle budget for reaching the post-boot snapshot point. Booting
    /// past this without the runner announcing itself is a clean
    /// [`RigError::BootFailed`], not a wedged rig.
    pub boot_budget: u64,
    /// Cycle budget for each golden (fault-free) reference run. The
    /// budget is measured from the snapshot point — boot cycles do not
    /// eat into it — and exceeding it surfaces as a clean
    /// [`RigError::GoldenFailed`], never a wedged rig. A capture that
    /// takes exactly this many cycles still succeeds (the boundary is
    /// pinned by `tests/budgets.rs`).
    pub golden_budget: u64,
    /// Whether the machine's per-step architectural-state sanitizer is
    /// enabled (see [`kfi_machine::MachineConfig::sanitizer`]).
    /// Violations observed during a run are counted into
    /// [`RunRecord::sanitizer_violations`] and the rig metrics.
    pub sanitizer: bool,
    /// Number of guest CPUs (see [`kfi_machine::MachineConfig::cpus`]).
    /// The default 1 is the golden-corpus configuration — the machine
    /// is structurally identical to the pre-SMP uniprocessor. Values
    /// above 1 only bring application processors online when the
    /// kernel was built with [`kfi_kernel::KernelBuildOptions::smp`];
    /// the CPU count joins the golden-store fingerprint either way.
    pub cpus: u32,
}

impl Default for RigConfig {
    fn default() -> RigConfig {
        RigConfig {
            budget_factor: 6,
            budget_slack: 2_000_000,
            switch_overhead: 0,
            decode_cache: true,
            block_engine: true,
            block_chain: true,
            boot_budget: 80_000_000,
            golden_budget: 400_000_000,
            sanitizer: false,
            cpus: 1,
        }
    }
}

/// A golden (fault-free) reference run for one workload mode.
#[derive(Debug, Clone)]
pub struct GoldenRun {
    /// Run mode.
    pub mode: u32,
    /// Console output from the post-boot snapshot to the clean halt.
    pub console: String,
    /// Result values reported by the workload(s).
    pub results: Vec<u32>,
    /// Cycles from snapshot to halt.
    pub cycles: u64,
    /// Bitset over kernel text: which instruction addresses executed.
    coverage: Vec<u64>,
}

impl GoldenRun {
    /// True when the golden run executed the instruction at `addr`.
    pub fn covers(&self, addr: u32, text_base: u32) -> bool {
        let Some(off) = addr.checked_sub(text_base) else { return false };
        let (w, b) = ((off / 64) as usize, off % 64);
        self.coverage.get(w).map(|x| x & (1 << b) != 0).unwrap_or(false)
    }
}

/// Why the rig could not be constructed.
///
/// `Clone` because a memoized golden capture ([`GoldenStore`]) hands
/// the same result — including a failure — to every rig sharing the
/// store.
#[derive(Debug, Clone)]
pub enum RigError {
    /// The kernel never reported BOOT_OK.
    BootFailed(String),
    /// A golden run did not complete cleanly.
    GoldenFailed {
        /// The failing run mode.
        mode: u32,
        /// Console output of the failing run.
        console: String,
    },
}

impl std::fmt::Display for RigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RigError::BootFailed(c) => write!(f, "kernel failed to boot: {c}"),
            RigError::GoldenFailed { mode, console } => {
                write!(f, "golden run for mode {mode} failed: {console}")
            }
        }
    }
}

impl std::error::Error for RigError {}

/// 64-bit FNV-1a.
fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = if seed == 0 { 0xcbf2_9ce4_8422_2325 } else { seed };
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A campaign-wide memo of golden (fault-free) reference runs, keyed by
/// `(kernel-config fingerprint, workload mode)`.
///
/// The paper's per-injection key is `(function, workload,
/// kernel-config)`; the function dimension collapses here because a
/// golden run never arms a breakpoint and never flips a bit — its
/// outcome is independent of which function the campaign will later
/// inject into, so one capture serves every function. What remains is
/// one entry per workload mode per kernel configuration.
///
/// Each entry is captured **exactly once** across all workers: the
/// first rig to ask runs the capture; concurrent askers block on the
/// entry's [`OnceLock`] until it is ready and then share the same
/// [`Arc<GoldenRun>`]. A failed capture is memoized too — every rig
/// sharing the store sees the same [`RigError`].
#[derive(Default)]
pub struct GoldenStore {
    #[allow(clippy::type_complexity)]
    entries: Mutex<BTreeMap<(u64, u32), Arc<OnceLock<Result<Arc<GoldenRun>, RigError>>>>>,
    hits: AtomicU64,
    captures: AtomicU64,
}

impl GoldenStore {
    /// Returns the memoized golden run for `key`, running `capture` to
    /// produce it if this is the first request. Concurrent first
    /// requests for the same key execute `capture` once; the losers
    /// block until the winner finishes.
    pub fn get_or_capture(
        &self,
        key: (u64, u32),
        capture: impl FnOnce() -> Result<GoldenRun, RigError>,
    ) -> Result<Arc<GoldenRun>, RigError> {
        let cell = {
            let mut entries = self.entries.lock().expect("golden store lock");
            entries.entry(key).or_default().clone()
        };
        let mut ran = false;
        let result = cell.get_or_init(|| {
            ran = true;
            self.captures.fetch_add(1, Ordering::Relaxed);
            capture().map(Arc::new)
        });
        if !ran {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        result.clone()
    }

    /// Number of golden captures actually executed (one per distinct
    /// key, regardless of how many rigs forked).
    pub fn captures(&self) -> u64 {
        self.captures.load(Ordering::Relaxed)
    }

    /// Number of requests served from the memo without executing.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }
}

/// Everything produced by booting a workload once, before any golden
/// run or injection: the post-boot machine, its snapshot, and the
/// filesystem state.
struct BootedBase {
    machine: Machine,
    snapshot: Snapshot,
    boot_cycles: u64,
    post_boot_disk: Arc<Vec<u8>>,
    manifest: BTreeMap<String, (u32, u32)>,
}

/// Boots the kernel to the RUNNER_START snapshot point. The common
/// prefix of [`InjectorRig::new`] and [`RigShared::boot`].
fn boot_base(
    image: &KernelImage,
    files: &[FileSpec],
    config: RigConfig,
) -> Result<BootedBase, RigError> {
    let fsimg = kfi_kernel::mkfs(2048, files);
    let manifest = fsimg.manifest.clone();
    let boot_config = BootConfig {
        decode_cache: config.decode_cache,
        block_engine: config.block_engine,
        block_chain: config.block_chain,
        sanitizer: config.sanitizer,
        cpus: config.cpus,
        ..Default::default()
    };
    let mut m = boot(image, fsimg.disk, &boot_config);

    // Run to the snapshot point: the runner announcing itself (all
    // of init's own risky setup — fork, exec, file reads — is behind
    // this point, mirroring the paper where the injected activity is
    // driven by benchmark processes rather than by init).
    let boot_budget = config.boot_budget;
    loop {
        if m.max_tsc() > boot_budget {
            return Err(RigError::BootFailed(m.console_string()));
        }
        match m.step() {
            StepEvent::Executed => {}
            _ => return Err(RigError::BootFailed(m.console_string())),
        }
        if let Some((_, MonitorEvent::Event(v))) = m.monitor_events().last() {
            if *v == events::RUNNER_START {
                break;
            }
        }
    }
    // All rig cycle accounting runs on the campaign clock: the
    // furthest-along CPU. On a uniprocessor this is exactly `cpu.tsc`
    // (golden byte-identity depends on that); on an SMP machine it is
    // monotonic even as the scheduler rotates the active CPU, whose
    // own tsc can sit far behind.
    let boot_cycles = m.max_tsc();
    let snapshot = m.snapshot();
    let post_boot_disk = Arc::new(m.disk.as_ref().expect("disk attached").bytes().to_vec());
    Ok(BootedBase { machine: m, snapshot, boot_cycles, post_boot_disk, manifest })
}

/// The shared, immutable post-boot base of a campaign: one boot's worth
/// of state ([`Snapshot`] with `Arc`-shared memory, post-boot disk,
/// filesystem manifest) plus the campaign-wide [`GoldenStore`].
///
/// Boot once with [`RigShared::boot`], then hand the `Arc` to every
/// worker; each [`InjectorRig::fork`] builds a private copy-on-write
/// machine off the shared snapshot and resolves its golden runs through
/// the store. Nothing here is ever written after construction, so any
/// number of threads may fork concurrently — and a worker that poisons
/// its private rig (panic, sanitizer violation) can be handed a fresh
/// fork with no way to have contaminated the base.
pub struct RigShared {
    image: KernelImage,
    config: RigConfig,
    machine_config: MachineConfig,
    snapshot: Snapshot,
    boot_cycles: u64,
    post_boot_disk: Arc<Vec<u8>>,
    manifest: BTreeMap<String, (u32, u32)>,
    n_modes: u32,
    fingerprint: u64,
    store: GoldenStore,
}

impl RigShared {
    /// Boots the kernel once and captures the shared post-boot base.
    /// Golden runs are *not* captured here — the first fork to need
    /// each one captures it into the store.
    ///
    /// # Errors
    ///
    /// [`RigError::BootFailed`] when the kernel never reaches the
    /// snapshot point within the boot budget.
    pub fn boot(
        image: KernelImage,
        files: &[FileSpec],
        n_modes: u32,
        config: RigConfig,
    ) -> Result<Arc<RigShared>, RigError> {
        let base = boot_base(&image, files, config)?;
        // Fingerprint the kernel-config dimension of the golden key:
        // everything the golden run's outcome could depend on — the
        // kernel image, the post-boot filesystem, and the execution
        // configuration. Seeded per field so reordering can't collide.
        let mut fp = fnv1a(0, &image.entry.to_le_bytes());
        fp = fnv1a(fp, &image.program.text.base.to_le_bytes());
        fp = fnv1a(fp, &image.program.text.bytes);
        fp = fnv1a(fp, &image.program.data.bytes);
        fp = fnv1a(fp, &base.post_boot_disk);
        fp = fnv1a(
            fp,
            &[
                config.decode_cache as u8,
                config.block_engine as u8,
                config.block_chain as u8,
                config.sanitizer as u8,
            ],
        );
        fp = fnv1a(fp, &config.cpus.to_le_bytes());
        fp = fnv1a(fp, &n_modes.to_le_bytes());
        let machine_config = *base.machine.config();
        Ok(Arc::new(RigShared {
            image,
            config,
            machine_config,
            snapshot: base.snapshot,
            boot_cycles: base.boot_cycles,
            post_boot_disk: base.post_boot_disk,
            manifest: base.manifest,
            n_modes,
            fingerprint: fp,
            store: GoldenStore::default(),
        }))
    }

    /// The campaign-wide golden store.
    pub fn store(&self) -> &GoldenStore {
        &self.store
    }

    /// Boot duration in cycles (identical for every fork).
    pub fn boot_cycles(&self) -> u64 {
        self.boot_cycles
    }
}

/// The injection rig: owns a machine, the post-boot snapshot, golden
/// runs and coverage for every workload mode.
///
/// Built either standalone ([`InjectorRig::new`]: boot + capture
/// everything privately — the recompute-per-rig reference path) or as a
/// copy-on-write fork of a shared base ([`InjectorRig::fork`]). The two
/// are observationally identical; `tests/fork_equivalence.rs` proves it
/// run by run.
pub struct InjectorRig {
    /// The kernel image under test.
    pub image: KernelImage,
    config: RigConfig,
    machine: Machine,
    snapshot: Snapshot,
    boot_cycles: u64,
    post_boot_disk: Arc<Vec<u8>>,
    manifest: BTreeMap<String, (u32, u32)>,
    golden: Vec<Arc<GoldenRun>>,
    metrics: Metrics,
}

/// Stable [`trace_outcome`] code for an [`Outcome`].
fn outcome_code(o: &Outcome) -> u8 {
    match o {
        Outcome::NotActivated => trace_outcome::NOT_ACTIVATED,
        Outcome::NotManifested => trace_outcome::NOT_MANIFESTED,
        Outcome::FailSilenceViolation(_) => trace_outcome::FAIL_SILENCE_VIOLATION,
        Outcome::Crash(_) => trace_outcome::CRASH,
        Outcome::Hang => trace_outcome::HANG,
        Outcome::RigFault(_) => trace_outcome::RIG_FAULT,
    }
}

fn results_of(m: &Machine) -> Vec<u32> {
    m.monitor_events()
        .iter()
        .filter_map(|(_, e)| match e {
            MonitorEvent::Result(v) => Some(*v),
            _ => None,
        })
        .collect()
}

fn has_event(m: &Machine, code: u32) -> bool {
    m.monitor_events().iter().any(|(_, e)| matches!(e, MonitorEvent::Event(v) if *v == code))
}

fn event_tsc(m: &Machine, code: u32) -> Option<u64> {
    m.monitor_events()
        .iter()
        .find(|(_, e)| matches!(e, MonitorEvent::Event(v) if *v == code))
        .map(|(t, _)| *t)
}

fn vector_to_cause(v: Vector, cr2: u32) -> u32 {
    match v {
        Vector::PageFault => {
            if cr2 < 4096 {
                causes::NULL_POINTER
            } else {
                causes::PAGING_REQUEST
            }
        }
        Vector::GeneralProtection => causes::GPF,
        Vector::InvalidOpcode => causes::INVALID_OP,
        Vector::DivideError => causes::DIVIDE,
        Vector::Overflow => causes::OVERFLOW,
        Vector::Bounds => causes::BOUNDS,
        Vector::InvalidTss => causes::INVALID_TSS,
        Vector::SegmentNotPresent => causes::SEGMENT_NP,
        Vector::StackFault => causes::STACK,
        Vector::DoubleFault => causes::DOUBLE_FAULT,
        Vector::Breakpoint => causes::INT3,
        Vector::Nmi => causes::NMI,
        Vector::CoprocSegOverrun => causes::COPROC,
        _ => causes::KERNEL_PANIC,
    }
}

impl InjectorRig {
    /// Boots the kernel with the given filesystem contents, snapshots
    /// the machine at BOOT_OK, and captures golden runs + coverage for
    /// every mode in `0..n_modes`.
    ///
    /// # Errors
    ///
    /// [`RigError`] when boot or any golden run fails — experiments only
    /// make sense over a healthy baseline.
    pub fn new(
        image: KernelImage,
        files: &[FileSpec],
        n_modes: u32,
        config: RigConfig,
    ) -> Result<InjectorRig, RigError> {
        let base = boot_base(&image, files, config)?;
        let mut rig = InjectorRig {
            image,
            config,
            machine: base.machine,
            snapshot: base.snapshot,
            boot_cycles: base.boot_cycles,
            post_boot_disk: base.post_boot_disk,
            manifest: base.manifest,
            golden: Vec::new(),
            metrics: Metrics::default(),
        };

        for mode in 0..n_modes {
            let g = rig.capture_golden(mode)?;
            rig.golden.push(Arc::new(g));
        }
        Ok(rig)
    }

    /// Forks a rig off a shared post-boot base: a private copy-on-write
    /// machine built from the shared snapshot, with golden runs
    /// resolved through the base's [`GoldenStore`] (captured on first
    /// request per `(kernel-config, mode)` key, shared afterwards).
    ///
    /// Observationally identical to [`InjectorRig::new`] with the same
    /// image/files/config — same records, metrics, trace events — but
    /// the boot happens once per base and each golden run once per
    /// store key, instead of once per rig.
    ///
    /// # Errors
    ///
    /// [`RigError::GoldenFailed`] when a golden capture fails (memoized:
    /// every fork sharing the store sees the same error).
    pub fn fork(shared: &Arc<RigShared>) -> Result<InjectorRig, RigError> {
        let mut machine = Machine::fork(&shared.snapshot, shared.machine_config);
        // The disk forks copy-on-write off the shared post-boot image,
        // just like physical memory forks off the snapshot: per-run
        // resets then copy only the sectors the run wrote.
        machine.disk = Some(Ramdisk::fork_from(&shared.post_boot_disk, shared.snapshot.id()));
        let mut rig = InjectorRig {
            image: shared.image.clone(),
            config: shared.config,
            machine,
            snapshot: shared.snapshot.clone(),
            boot_cycles: shared.boot_cycles,
            post_boot_disk: shared.post_boot_disk.clone(),
            manifest: shared.manifest.clone(),
            golden: Vec::new(),
            metrics: Metrics::default(),
        };
        for mode in 0..shared.n_modes {
            let g = shared
                .store
                .get_or_capture((shared.fingerprint, mode), || rig.capture_golden(mode))?;
            rig.golden.push(g);
        }
        Ok(rig)
    }

    /// The golden run for a mode.
    pub fn golden(&self, mode: u32) -> &GoldenRun {
        &self.golden[mode as usize]
    }

    /// Boot duration in cycles.
    pub fn boot_cycles(&self) -> u64 {
        self.boot_cycles
    }

    /// Installs a ring-buffer trace sink of the given capacity on the
    /// rig's machine. Subsequent runs record their event timeline.
    pub fn enable_tracing(&mut self, capacity: usize) {
        self.machine.set_trace_sink(TraceSink::ring(capacity));
    }

    /// Removes the trace sink (back to zero-cost [`TraceSink::Null`]).
    pub fn disable_tracing(&mut self) {
        self.machine.set_trace_sink(TraceSink::Null);
    }

    /// Drains the recorded events (oldest first) without disturbing the
    /// sink. Empty when tracing is off.
    pub fn take_events(&mut self) -> Vec<Event> {
        let events = self.machine.trace_sink().events();
        self.machine.trace_sink_mut().clear();
        events
    }

    /// The metrics accumulated by this rig's runs so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Removes and returns the accumulated metrics, leaving zeroes.
    pub fn take_metrics(&mut self) -> Metrics {
        std::mem::take(&mut self.metrics)
    }

    fn reset_to_snapshot(&mut self, mode: u32) {
        self.machine.restore(&self.snapshot);
        // Reset the disk to the post-boot image, copying only the
        // sectors written since the last reset when the baseline is
        // already established (a severity-assessment reboot swaps in a
        // foreign disk, which forces — and survives — a full copy).
        match self.machine.disk.as_mut() {
            Some(d) => {
                d.restore_from(&self.post_boot_disk, self.snapshot.id());
            }
            None => {
                self.machine.disk =
                    Some(Ramdisk::fork_from(&self.post_boot_disk, self.snapshot.id()));
            }
        }
        kfi_kernel::set_run_mode(&mut self.machine, mode);
        let tsc = self.machine.max_tsc();
        self.machine.trace_sink_mut().emit(tsc, EventKind::SnapshotRestore { mode });
    }

    fn capture_golden(&mut self, mode: u32) -> Result<GoldenRun, RigError> {
        self.reset_to_snapshot(mode);
        let text_base = self.image.program.text.base;
        let text_len = self.image.program.text.bytes.len() as u32;
        let mut coverage = vec![0u64; (text_len as usize).div_ceil(64)];
        let budget = self.snapshot_tsc() + self.config.golden_budget;
        loop {
            let m = &mut self.machine;
            if m.max_tsc() > budget {
                return Err(RigError::GoldenFailed { mode, console: m.console_string() });
            }
            // Record coverage before executing.
            let eip = m.cpu.eip;
            if m.cpu.cs == kfi_machine::KERNEL_CS {
                if let Some(off) = eip.checked_sub(text_base) {
                    if off < text_len {
                        coverage[(off / 64) as usize] |= 1 << (off % 64);
                    }
                }
            }
            match m.step() {
                StepEvent::Executed => {}
                StepEvent::Halted => break,
                other => {
                    return Err(RigError::GoldenFailed {
                        mode,
                        console: format!("{other:?}: {}", self.machine.console_string()),
                    })
                }
            }
        }
        let m = &self.machine;
        if !has_event(m, events::SHUTDOWN) || has_event(m, events::PANIC) {
            return Err(RigError::GoldenFailed { mode, console: m.console_string() });
        }
        Ok(GoldenRun {
            mode,
            console: m.console_string(),
            results: results_of(m),
            cycles: m.max_tsc() - self.snapshot_tsc(),
            coverage,
        })
    }

    fn snapshot_tsc(&self) -> u64 {
        self.boot_cycles
    }

    /// Whether the golden run of `mode` ever executes the instruction —
    /// the deterministic pre-check that lets non-activated injections
    /// skip the full run (the paper likewise proceeds to the next error
    /// without a reboot when the target is not activated).
    pub fn would_activate(&self, addr: u32, mode: u32) -> bool {
        self.golden[mode as usize].covers(addr, self.image.program.text.base)
    }

    /// Executes one injection run and classifies the outcome.
    pub fn run_one(&mut self, target: &InjectionTarget, mode: u32) -> RunRecord {
        self.metrics.runs += 1;

        // Fast path: provably never executed under this workload.
        if !self.would_activate(target.insn_addr, mode) {
            self.metrics.record_outcome(trace_outcome::NOT_ACTIVATED);
            self.metrics.run_cycles.record(0);
            return RunRecord {
                target: target.clone(),
                mode,
                outcome: Outcome::NotActivated,
                activation_tsc: None,
                run_cycles: 0,
                sanitizer_violations: 0,
            };
        }

        self.reset_to_snapshot(mode);
        self.metrics.snapshot_restores += 1;
        // TLB and decode-cache stats are cumulative across restores;
        // diff around the run (sanitizer violations likewise).
        let tlb_0 = self.machine.tlb_stats();
        let dec_0 = self.machine.decode_stats();
        let blk_0 = self.machine.block_stats();
        let chn_0 = self.machine.chain_stats();
        let san_0 = self.machine.sanitizer_violation_count();
        let golden_cycles = self.golden[mode as usize].cycles;
        let budget = golden_cycles * self.config.budget_factor + self.config.budget_slack;
        let start = self.snapshot_tsc();
        self.machine.cpu.arm_breakpoint(0, target.insn_addr);
        self.machine
            .trace_sink_mut()
            .emit(start, EventKind::InjectionArmed { addr: target.insn_addr });

        let exit1 = self.machine.run(budget);
        let activation_tsc = match exit1 {
            RunExit::DebugBreak { .. } => {
                let t = self.machine.max_tsc();
                self.machine
                    .trace_sink_mut()
                    .emit(t, EventKind::TriggerHit { addr: target.insn_addr });
                // Apply the flip (persistent for the rest of the run).
                let addr = target.insn_addr + target.byte_index as u32;
                let mut b = [0u8; 1];
                let read = self.machine.probe_read(addr, &mut b);
                debug_assert_eq!(read, 1, "target must be mapped");
                b[0] ^= target.bit_mask;
                let ok = self.machine.probe_write(addr, &b);
                debug_assert!(ok);
                self.machine
                    .trace_sink_mut()
                    .emit(t, EventKind::BitFlipApplied { addr, mask: target.bit_mask });
                t
            }
            // The breakpoint never fired even though coverage said it
            // would — only possible if coverage and run diverge, which
            // determinism forbids; classify conservatively.
            _ => {
                let run_cycles = self.machine.max_tsc().saturating_sub(start);
                let sanitizer_violations = self.absorb_sanitizer(san_0);
                self.absorb_run_counters(tlb_0, dec_0, blk_0, chn_0);
                self.metrics.record_outcome(trace_outcome::NOT_ACTIVATED);
                self.metrics.run_cycles.record(run_cycles);
                self.metrics.run_cycles_total += run_cycles;
                return RunRecord {
                    target: target.clone(),
                    mode,
                    outcome: Outcome::NotActivated,
                    activation_tsc: None,
                    run_cycles,
                    sanitizer_violations,
                };
            }
        };

        // Run to completion.
        let mut exit2 = self.machine.run(budget);
        // A second DebugBreak is impossible (one-shot), but be safe.
        while let RunExit::DebugBreak { .. } = exit2 {
            exit2 = self.machine.run(budget);
        }

        // Measure before classification: the severity assessment reboots
        // the machine (resetting the TSC and its counters).
        let end_tsc = self.machine.max_tsc();
        let run_cycles = end_tsc.saturating_sub(start);
        let sanitizer_violations = self.absorb_sanitizer(san_0);
        self.absorb_run_counters(tlb_0, dec_0, blk_0, chn_0);

        // Keep the severity-assessment reboot out of the timeline.
        let sink = self.machine.take_trace_sink();
        let outcome = self.classify_exit(target, mode, activation_tsc, exit2);
        self.machine.set_trace_sink(sink);

        let code = outcome_code(&outcome);
        self.metrics.record_outcome(code);
        self.metrics.run_cycles.record(run_cycles);
        self.metrics.run_cycles_total += run_cycles;
        self.machine.trace_sink_mut().emit(end_tsc, EventKind::OutcomeClassified { code });
        if let Outcome::Crash(info) = &outcome {
            self.metrics.record_crash_latency(info.latency);
            let from = trace_subsystem::id(&target.subsystem);
            let to = trace_subsystem::id(&info.subsystem);
            if from != to {
                self.machine
                    .trace_sink_mut()
                    .emit(end_tsc, EventKind::SubsystemTransition { from, to });
            }
        }

        RunRecord {
            target: target.clone(),
            mode,
            outcome,
            activation_tsc: Some(activation_tsc),
            run_cycles,
            sanitizer_violations,
        }
    }

    /// The sanitizer-violation delta since the start-of-run baseline,
    /// folded into the rig metrics.
    fn absorb_sanitizer(&mut self, san_0: u64) -> u64 {
        let delta = self.machine.sanitizer_violation_count() - san_0;
        self.metrics.sanitizer_violations += delta;
        delta
    }

    /// Folds the machine's per-run execution counters plus the TLB and
    /// decode-cache deltas since the start-of-run baselines into the rig
    /// metrics, and records the run's dirty-page footprint. Must run
    /// before classification: severity assessment reboots the machine
    /// (and its reboot-and-fsck activity must stay out of run metrics).
    fn absorb_run_counters(
        &mut self,
        tlb_0: (u64, u64),
        dec_0: (u64, u64, u64),
        blk_0: (u64, u64, u64),
        chn_0: (u64, u64, u64),
    ) {
        let c = self.machine.counters();
        self.metrics.instructions += c.instructions;
        self.metrics.syscalls += c.syscalls;
        self.metrics.timer_irqs += c.timer_irqs;
        for t in self.machine.trap_log() {
            let v = t.vector.number() as usize;
            if v < self.metrics.faults_by_vector.len() {
                self.metrics.faults_by_vector[v] += 1;
            }
        }
        let (h, m) = self.machine.tlb_stats();
        self.metrics.tlb_hits += h - tlb_0.0;
        self.metrics.tlb_miss_walks += m - tlb_0.1;
        let (dh, dm, di) = self.machine.decode_stats();
        self.metrics.decode_hits += dh - dec_0.0;
        self.metrics.decode_misses += dm - dec_0.1;
        self.metrics.decode_invalidations += di - dec_0.2;
        let (bh, bm, bi) = self.machine.block_stats();
        self.metrics.block_hits += bh - blk_0.0;
        self.metrics.block_misses += bm - blk_0.1;
        self.metrics.block_invalidations += bi - blk_0.2;
        let (cl, cf, cb) = self.machine.chain_stats();
        self.metrics.block_chain_links += cl - chn_0.0;
        self.metrics.block_chain_follows += cf - chn_0.1;
        self.metrics.block_chain_breaks += cb - chn_0.2;
        // The run's *own* footprint, not the pages copied at restore
        // time: restore cost depends on what the previous run on this
        // worker touched, which would vary with scheduling, while the
        // dirty count here is a pure function of this run.
        self.metrics.dirty_pages += u64::from(self.machine.dirty_page_count());
    }

    /// Classifies a finished run's [`RunExit`] into an [`Outcome`]
    /// (paper Table 3). Public so tests can pin the classification
    /// boundary directly — e.g. that a `cli;hlt` halt without a
    /// SHUTDOWN report, or a blown cycle budget, reads as [`Hang`]
    /// from the watchdog's point of view.
    ///
    /// Crash exits trigger the severity assessment, which reboots the
    /// rig's machine.
    ///
    /// [`Hang`]: Outcome::Hang
    pub fn classify_exit(
        &mut self,
        target: &InjectionTarget,
        mode: u32,
        activation_tsc: u64,
        exit: RunExit,
    ) -> Outcome {
        match exit {
            RunExit::CycleLimit => Outcome::Hang,
            RunExit::TripleFault => {
                // The guest handler never ran; reconstruct from the trap
                // log: the first fault of the terminal cascade.
                let fatal = self.fatal_trap(activation_tsc);
                let (cause, eip) = match fatal {
                    Some(t) => (vector_to_cause(t.vector, t.cr2), t.eip),
                    None => (causes::DOUBLE_FAULT, self.machine.cpu.eip),
                };
                let latency = fatal
                    .map(|t| t.tsc.saturating_sub(activation_tsc))
                    .unwrap_or(0)
                    .saturating_sub(self.config.switch_overhead);
                let (severity, _) = self.assess_severity();
                let (function, subsystem) = self.locate(eip, &target.subsystem);
                Outcome::Crash(CrashInfo {
                    cause,
                    eip,
                    function,
                    subsystem,
                    latency,
                    severity,
                    triple_fault: true,
                })
            }
            RunExit::Halted => {
                let m = &self.machine;
                if has_event(m, events::SHUTDOWN) {
                    return self.classify_completed(mode);
                }
                if has_event(m, events::PANIC) || has_event(m, events::OOPS) {
                    return self.classify_crash(activation_tsc, &target.subsystem);
                }
                // Halted without any report: corrupted code wandered
                // into a cli;hlt — the watchdog view is a hang.
                Outcome::Hang
            }
            RunExit::DebugBreak { .. } => unreachable!("drained by caller"),
        }
    }

    fn classify_completed(&mut self, mode: u32) -> Outcome {
        let golden = &self.golden[mode as usize];
        let results = results_of(&self.machine);
        let console = self.machine.console_string();
        if results != golden.results {
            return Outcome::FailSilenceViolation(FsvKind::WrongResult {
                expected: golden.results.clone(),
                got: results,
            });
        }
        if console != golden.console {
            return Outcome::FailSilenceViolation(FsvKind::ConsoleMismatch);
        }
        // Everything looked right — but did the run silently corrupt
        // the disk?
        let disk = self.machine.disk.as_ref().expect("disk").bytes().to_vec();
        match fsck(&disk, &self.manifest) {
            FsckReport::Clean => Outcome::NotManifested,
            FsckReport::Fixed { notes, .. } => {
                Outcome::FailSilenceViolation(FsvKind::SilentCorruption {
                    detail: notes.first().cloned().unwrap_or_default(),
                })
            }
            FsckReport::Unrecoverable { reason } => {
                Outcome::FailSilenceViolation(FsvKind::SilentCorruption { detail: reason })
            }
        }
    }

    fn classify_crash(&mut self, activation_tsc: u64, target_subsystem: &str) -> Outcome {
        let m = &self.machine;
        let mut cause = None;
        let mut eip = None;
        for (_, e) in m.monitor_events() {
            match e {
                MonitorEvent::CrashCause(c) => cause = Some(*c),
                MonitorEvent::CrashEip(a) => eip = Some(*a),
                _ => {}
            }
        }
        let oops_tsc = event_tsc(m, events::OOPS)
            .or_else(|| event_tsc(m, events::PANIC))
            .unwrap_or(m.max_tsc());
        let fatal = self.fatal_trap(activation_tsc);
        let cause = cause
            .or_else(|| fatal.map(|t| vector_to_cause(t.vector, t.cr2)))
            .unwrap_or(causes::KERNEL_PANIC);
        let eip = eip.or_else(|| fatal.map(|t| t.eip)).unwrap_or(0);
        // Latency: fault-delivery time minus activation; for pure
        // software panics fall back to the report time.
        let raw = match fatal {
            Some(t) if t.tsc >= activation_tsc => t.tsc - activation_tsc,
            _ => oops_tsc.saturating_sub(activation_tsc),
        };
        let latency = raw.saturating_sub(self.config.switch_overhead);
        let (severity, _) = self.assess_severity();
        let (function, subsystem) = self.locate(eip, target_subsystem);
        Outcome::Crash(CrashInfo {
            cause,
            eip,
            function,
            subsystem,
            latency,
            severity,
            triple_fault: false,
        })
    }

    /// Resolves a crash EIP to (function, subsystem) with the paper's
    /// attribution semantics:
    ///
    /// * crashes inside `lib` string helpers are charged to the
    ///   *injected* subsystem — Linux 2.4 inlined `memcpy`/`memset`
    ///   into their callers, so the paper's oopses landed in the caller;
    /// * crashes at unresolvable EIPs (corrupted control flow jumped
    ///   into user pages or unmapped space while still in kernel mode)
    ///   are likewise charged to the injected subsystem, whose corrupted
    ///   code was the last thing executing.
    fn locate(&self, eip: u32, injected_subsystem: &str) -> (Option<String>, String) {
        match self.image.function_of(eip) {
            Some(f) => {
                let sub = f.subsystem.clone().unwrap_or_else(|| "?".into());
                if sub == "lib" {
                    (Some(f.name.clone()), injected_subsystem.to_string())
                } else {
                    (Some(f.name.clone()), sub)
                }
            }
            None => (None, injected_subsystem.to_string()),
        }
    }

    /// The fatal trap: the last kernel-mode fault after activation,
    /// skipping the double-fault cascade down to its trigger.
    fn fatal_trap(&self, activation_tsc: u64) -> Option<TrapRecord> {
        let log = self.machine.trap_log();
        let mut candidate: Option<TrapRecord> = None;
        for t in log.iter().rev() {
            if t.tsc < activation_tsc {
                break;
            }
            if t.from_user {
                // User faults can't be the kernel's crash...
                if candidate.is_some() {
                    break;
                }
                continue;
            }
            match candidate {
                None => candidate = Some(*t),
                Some(c) => {
                    // Walk past the cascade: records essentially at the
                    // same instant belong to the same failure.
                    if c.tsc.saturating_sub(t.tsc) < 400
                        && (c.vector == Vector::DoubleFault
                            || c.vector == Vector::SegmentNotPresent)
                    {
                        candidate = Some(*t);
                    } else {
                        break;
                    }
                }
            }
        }
        candidate
    }

    /// Post-crash severity via fsck + a reboot attempt (paper §7.1):
    /// unrecoverable fs or unbootable system → most severe; repairable
    /// inconsistencies → severe; else normal. Returns the fsck report
    /// for the record.
    pub fn assess_severity(&mut self) -> (Severity, FsckReport) {
        let disk = self.machine.disk.as_ref().expect("disk").bytes().to_vec();
        let report = fsck(&disk, &self.manifest);
        if let FsckReport::Unrecoverable { .. } = report {
            return (Severity::MostSevere, report);
        }
        // Reboot test on the (possibly damaged) disk.
        let boots = {
            let m = &mut self.machine;
            m.disk = Some(Ramdisk::from_bytes(disk));
            kfi_kernel::load_into(m, &self.image, &BootConfig::default());
            let budget = self.boot_cycles * 4 + 1_000_000;
            let exit = m.run(budget);
            match exit {
                RunExit::Halted | RunExit::CycleLimit => {
                    has_event(m, events::BOOT_OK) && !has_event(m, events::PANIC)
                }
                _ => false,
            }
        };
        if !boots {
            return (Severity::MostSevere, report);
        }
        match report {
            FsckReport::Fixed { .. } => (Severity::Severe, report),
            _ => (Severity::Normal, report),
        }
    }

    /// Borrow the machine (post-run inspection, e.g. crash dumps).
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_golden(mode: u32) -> GoldenRun {
        GoldenRun {
            mode,
            console: format!("mode {mode}"),
            results: vec![mode],
            cycles: 1000 + mode as u64,
            coverage: Vec::new(),
        }
    }

    #[test]
    fn golden_store_captures_each_key_exactly_once() {
        let store = GoldenStore::default();
        let a = store.get_or_capture((1, 0), || Ok(dummy_golden(0))).unwrap();
        let b = store.get_or_capture((1, 0), || panic!("second request must not capture")).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "both callers share one GoldenRun");
        let c = store.get_or_capture((1, 1), || Ok(dummy_golden(1))).unwrap();
        assert_eq!(c.mode, 1);
        // A different config fingerprint is a different key.
        let d = store.get_or_capture((2, 0), || Ok(dummy_golden(0))).unwrap();
        assert!(!Arc::ptr_eq(&a, &d));
        assert_eq!(store.captures(), 3);
        assert_eq!(store.hits(), 1);
    }

    #[test]
    fn golden_store_memoizes_failures_too() {
        let store = GoldenStore::default();
        let err = store
            .get_or_capture((7, 0), || {
                Err(RigError::GoldenFailed { mode: 0, console: "boom".into() })
            })
            .unwrap_err();
        assert!(matches!(err, RigError::GoldenFailed { mode: 0, .. }));
        let again = store
            .get_or_capture((7, 0), || panic!("failure is memoized, not retried"))
            .unwrap_err();
        assert!(matches!(again, RigError::GoldenFailed { mode: 0, .. }), "{again}");
        assert_eq!(store.captures(), 1);
        assert_eq!(store.hits(), 1);
    }

    #[test]
    fn golden_store_concurrent_askers_share_one_capture() {
        let store = Arc::new(GoldenStore::default());
        let captures = Arc::new(AtomicU64::new(0));
        let runs: Vec<Arc<GoldenRun>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let store = Arc::clone(&store);
                    let captures = Arc::clone(&captures);
                    s.spawn(move || {
                        store
                            .get_or_capture((9, 0), || {
                                captures.fetch_add(1, Ordering::Relaxed);
                                Ok(dummy_golden(0))
                            })
                            .unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(captures.load(Ordering::Relaxed), 1, "one thread captured");
        assert_eq!(store.captures(), 1);
        assert_eq!(store.hits(), 7);
        for r in &runs[1..] {
            assert!(Arc::ptr_eq(&runs[0], r));
        }
    }

    #[test]
    fn fnv1a_is_order_sensitive() {
        let a = fnv1a(fnv1a(0, b"ab"), b"c");
        let b = fnv1a(fnv1a(0, b"a"), b"bc");
        assert_eq!(a, b, "fnv over concatenation is associative");
        assert_ne!(fnv1a(0, b"abc"), fnv1a(0, b"acb"));
    }
}
