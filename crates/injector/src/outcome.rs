//! Outcome classification (the paper's Table 3) and crash severity
//! (Section 7.1).

use crate::target::InjectionTarget;

/// Crash severity levels (paper §7.1) with the paper's downtime model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The system reboots automatically (< 4 minutes).
    Normal,
    /// Interactive fsck required (> 5 minutes, operator needed).
    Severe,
    /// Reformat + reinstall (~1 hour).
    MostSevere,
}

impl Severity {
    /// Modeled downtime in seconds (240 s / 330 s / 3600 s).
    pub fn downtime_secs(&self) -> u32 {
        match self {
            Severity::Normal => 240,
            Severity::Severe => 330,
            Severity::MostSevere => 3600,
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Severity::Normal => "normal",
            Severity::Severe => "severe",
            Severity::MostSevere => "most severe",
        }
    }
}

/// How a fail-silence violation manifested.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsvKind {
    /// A workload reported a wrong result value (wrong data out).
    WrongResult {
        /// Expected result values.
        expected: Vec<u32>,
        /// Observed result values.
        got: Vec<u32>,
    },
    /// Console output differs from the golden run (e.g. an error code
    /// was returned and printed — the paper's `-ESPIPE` example).
    ConsoleMismatch,
    /// The run "succeeded" but left the filesystem corrupted.
    SilentCorruption {
        /// fsck's description.
        detail: String,
    },
}

/// Crash details.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashInfo {
    /// Cause code ([`kfi_kernel::layout::causes`]).
    pub cause: u32,
    /// EIP of the fatal fault.
    pub eip: u32,
    /// Function containing the crash, if resolvable.
    pub function: Option<String>,
    /// Subsystem where the crash happened ("user" when the EIP left the
    /// kernel, "?" when unresolvable).
    pub subsystem: String,
    /// Crash latency in cycles (fault time − activation time, with the
    /// routine-switch overhead already excluded; see §5.3).
    pub latency: u64,
    /// Severity from the post-crash fsck + reboot test.
    pub severity: Severity,
    /// True when the machine triple-faulted (the watchdog had to reset).
    pub triple_fault: bool,
}

/// Outcome of one injection run (paper Table 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The corrupted instruction was never executed.
    NotActivated,
    /// Executed with no visible abnormal effect.
    NotManifested,
    /// Wrong data/response propagated out of the OS.
    FailSilenceViolation(FsvKind),
    /// The kernel crashed.
    Crash(CrashInfo),
    /// The system wedged (hardware watchdog fired).
    Hang,
    /// The *rig* failed, not the guest: the worker panicked during this
    /// run and the campaign supervisor recorded the loss (with the
    /// panic payload) instead of aborting the whole campaign. Says
    /// nothing about the injected error's effect, so it is excluded
    /// from activation statistics.
    RigFault(String),
}

impl Outcome {
    /// True when the error was activated — everything but NotActivated
    /// and RigFault (a rig fault observed nothing about the guest).
    pub fn activated(&self) -> bool {
        !matches!(self, Outcome::NotActivated | Outcome::RigFault(_))
    }

    /// Short category label.
    pub fn category(&self) -> &'static str {
        match self {
            Outcome::NotActivated => "not activated",
            Outcome::NotManifested => "not manifested",
            Outcome::FailSilenceViolation(_) => "fail silence violation",
            Outcome::Crash(_) => "crash",
            Outcome::Hang => "hang",
            Outcome::RigFault(_) => "rig fault",
        }
    }

    /// True for crash-or-hang (the combined column of Figure 4).
    pub fn is_crash_or_hang(&self) -> bool {
        matches!(self, Outcome::Crash(_) | Outcome::Hang)
    }
}

/// A complete record of one injection run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunRecord {
    /// What was injected.
    pub target: InjectionTarget,
    /// Which workload ran (run mode).
    pub mode: u32,
    /// The classified outcome.
    pub outcome: Outcome,
    /// TSC at activation (bit-flip application), if activated.
    pub activation_tsc: Option<u64>,
    /// Total cycles the run consumed.
    pub run_cycles: u64,
    /// Machine sanitizer violations observed during this run (always 0
    /// when the rig runs without [`MachineConfig::sanitizer`]; a
    /// nonzero count marks the run as poisoned for the supervisor's
    /// retry/quarantine path).
    ///
    /// [`MachineConfig::sanitizer`]: kfi_machine::MachineConfig
    pub sanitizer_violations: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_downtime_follows_the_paper() {
        assert!(Severity::Normal.downtime_secs() < 4 * 60 + 1);
        assert!(Severity::Severe.downtime_secs() > 5 * 60);
        assert_eq!(Severity::MostSevere.downtime_secs(), 3600);
        assert!(Severity::Normal < Severity::Severe);
        assert!(Severity::Severe < Severity::MostSevere);
    }

    #[test]
    fn outcome_categories() {
        assert!(!Outcome::NotActivated.activated());
        assert!(Outcome::Hang.activated());
        assert!(Outcome::Hang.is_crash_or_hang());
        assert!(!Outcome::NotManifested.is_crash_or_hang());
        assert_eq!(
            Outcome::FailSilenceViolation(FsvKind::ConsoleMismatch).category(),
            "fail silence violation"
        );
    }
}
