//! # kfi-injector — the Linux Kernel Error Injector
//!
//! The reproduction of the paper's primary artifact: a fault/error
//! injector that
//!
//! 1. plans single-bit corruptions of the instruction stream of selected
//!    kernel functions (campaigns A/B/C of Table 4),
//! 2. triggers each injection with a one-shot debug-register breakpoint
//!    exactly when the target instruction is reached (as the paper's
//!    injector does via DR0-DR3),
//! 3. lets the corrupted system run under the benchmark workload, and
//! 4. classifies the outcome (Table 3: not activated / not manifested /
//!    fail silence violation / crash / hang), measuring crash latency in
//!    cycles, crash cause, error propagation between subsystems, and
//!    crash severity via fsck + a reboot attempt.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod outcome;
mod rig;
mod target;
pub mod wire;

pub use outcome::{CrashInfo, FsvKind, Outcome, RunRecord, Severity};
pub use rig::{GoldenRun, GoldenStore, InjectorRig, RigConfig, RigError, RigShared};
pub use target::{
    function_insns, plan_campaign, plan_function, Campaign, InjectionTarget, TargetInsn,
};
