//! Injection campaign planning: enumerating target instructions and
//! selecting the bit to flip.

use kfi_isa::{cond_reversal_bit, decode, InsnClass};
use kfi_kernel::KernelImage;
use rand::Rng;

/// The paper's three fault-injection campaigns (Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Campaign {
    /// A — Any Random Error: all non-branch instructions, a random bit
    /// in each byte of the instruction.
    A,
    /// B — Random Branch Error: conditional branch instructions, a
    /// random bit in each byte.
    B,
    /// C — Valid but Incorrect Branch: conditional branches, flipping
    /// exactly the bit that reverses the condition.
    C,
}

impl Campaign {
    /// The paper's campaign name.
    pub fn name(&self) -> &'static str {
        match self {
            Campaign::A => "Any Random Error",
            Campaign::B => "Random Branch Error",
            Campaign::C => "Valid but Incorrect Branch",
        }
    }

    /// Single-letter id.
    pub fn letter(&self) -> char {
        match self {
            Campaign::A => 'A',
            Campaign::B => 'B',
            Campaign::C => 'C',
        }
    }
}

/// One planned injection: which bit of which instruction byte to flip.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectionTarget {
    /// Campaign this target belongs to.
    pub campaign: Campaign,
    /// Target function name.
    pub function: String,
    /// Target function's subsystem.
    pub subsystem: String,
    /// Address of the target instruction (the debug-register trigger).
    pub insn_addr: u32,
    /// Encoded length of the (uncorrupted) instruction.
    pub insn_len: u8,
    /// Byte within the instruction to corrupt.
    pub byte_index: usize,
    /// Bit mask to XOR into that byte.
    pub bit_mask: u8,
    /// True when the target instruction is a conditional branch.
    pub is_branch: bool,
}

/// A decoded instruction inside a target function.
#[derive(Debug, Clone)]
pub struct TargetInsn {
    /// Instruction address.
    pub addr: u32,
    /// Encoded length.
    pub len: u8,
    /// Classification.
    pub class: InsnClass,
}

/// Walks a function's instructions (stops at the first undecodable
/// byte, which should not happen for assembler output).
pub fn function_insns(image: &KernelImage, function: &str) -> Vec<TargetInsn> {
    let Some(sym) = image.program.symbols.lookup(function) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut addr = sym.value;
    let end = sym.value + sym.size;
    while addr < end {
        let Some(bytes) = image.program.slice_at(addr, 15) else { break };
        let Ok(insn) = decode(bytes) else { break };
        out.push(TargetInsn { addr, len: insn.len, class: insn.class() });
        addr += insn.len as u32;
    }
    out
}

/// Plans every injection of `campaign` into `function`, following the
/// paper's Table 4 exactly:
///
/// * A: every byte of every non-branch instruction gets one injection
///   with a random bit,
/// * B: every byte of every conditional branch, random bit,
/// * C: one injection per conditional branch — the condition-reversal
///   bit.
pub fn plan_function<R: Rng>(
    image: &KernelImage,
    function: &str,
    campaign: Campaign,
    rng: &mut R,
) -> Vec<InjectionTarget> {
    let Some(sym) = image.program.symbols.lookup(function) else {
        return Vec::new();
    };
    let subsystem = sym.subsystem.clone().unwrap_or_else(|| "?".into());
    let mut out = Vec::new();
    for insn in function_insns(image, function) {
        let is_branch = insn.class == InsnClass::CondBranch;
        match campaign {
            Campaign::A => {
                if is_branch {
                    continue;
                }
                for byte_index in 0..insn.len as usize {
                    out.push(InjectionTarget {
                        campaign,
                        function: function.to_string(),
                        subsystem: subsystem.clone(),
                        insn_addr: insn.addr,
                        insn_len: insn.len,
                        byte_index,
                        bit_mask: 1u8 << rng.gen_range(0..8),
                        is_branch,
                    });
                }
            }
            Campaign::B => {
                if !is_branch {
                    continue;
                }
                for byte_index in 0..insn.len as usize {
                    out.push(InjectionTarget {
                        campaign,
                        function: function.to_string(),
                        subsystem: subsystem.clone(),
                        insn_addr: insn.addr,
                        insn_len: insn.len,
                        byte_index,
                        bit_mask: 1u8 << rng.gen_range(0..8),
                        is_branch,
                    });
                }
            }
            Campaign::C => {
                if !is_branch {
                    continue;
                }
                let Some(bytes) = image.program.slice_at(insn.addr, insn.len as usize) else {
                    continue;
                };
                let Some((byte_index, bit_mask)) = cond_reversal_bit(bytes) else {
                    continue;
                };
                out.push(InjectionTarget {
                    campaign,
                    function: function.to_string(),
                    subsystem: subsystem.clone(),
                    insn_addr: insn.addr,
                    insn_len: insn.len,
                    byte_index,
                    bit_mask,
                    is_branch,
                });
            }
        }
    }
    out
}

/// Plans a whole campaign over a list of functions.
pub fn plan_campaign<R: Rng>(
    image: &KernelImage,
    functions: &[String],
    campaign: Campaign,
    rng: &mut R,
) -> Vec<InjectionTarget> {
    functions.iter().flat_map(|f| plan_function(image, f, campaign, rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kfi_kernel::{build_kernel, KernelBuildOptions};
    use rand::SeedableRng;

    #[test]
    fn plans_follow_table4() {
        let image = build_kernel(KernelBuildOptions::default()).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let a = plan_function(&image, "pipe_read", Campaign::A, &mut rng);
        let b = plan_function(&image, "pipe_read", Campaign::B, &mut rng);
        let c = plan_function(&image, "pipe_read", Campaign::C, &mut rng);
        assert!(!a.is_empty() && !b.is_empty() && !c.is_empty());
        assert!(a.iter().all(|t| !t.is_branch));
        assert!(b.iter().all(|t| t.is_branch));
        assert!(c.iter().all(|t| t.is_branch));
        // A has one target per byte: more targets than instructions.
        let insns = function_insns(&image, "pipe_read");
        let non_branch_bytes: usize =
            insns.iter().filter(|i| i.class != InsnClass::CondBranch).map(|i| i.len as usize).sum();
        assert_eq!(a.len(), non_branch_bytes);
        // C has exactly one target per conditional branch.
        let branches = insns.iter().filter(|i| i.class == InsnClass::CondBranch).count();
        assert_eq!(c.len(), branches);
        // C's flips reverse the condition bit (mask 1 on the cc byte).
        assert!(c.iter().all(|t| t.bit_mask == 1));
    }

    #[test]
    fn whole_function_decodes() {
        let image = build_kernel(KernelBuildOptions::default()).unwrap();
        for f in ["schedule", "do_page_fault", "do_generic_file_read", "link_path_walk"] {
            let insns = function_insns(&image, f);
            let sym = image.program.symbols.lookup(f).unwrap();
            let total: u32 = insns.iter().map(|i| i.len as u32).sum();
            assert_eq!(total, sym.size, "{f} decode gap");
        }
    }

    #[test]
    fn deterministic_with_seed() {
        let image = build_kernel(KernelBuildOptions::default()).unwrap();
        let mut r1 = rand::rngs::StdRng::seed_from_u64(42);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(42);
        let a = plan_function(&image, "schedule", Campaign::A, &mut r1);
        let b = plan_function(&image, "schedule", Campaign::A, &mut r2);
        assert_eq!(a, b);
    }
}
