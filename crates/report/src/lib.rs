//! # kfi-report — table and figure renderers
//!
//! Regenerates every table and figure of the paper's evaluation as
//! plain text (plus CSV fragments), from the structures produced by
//! [`kfi_core`]. One function per artifact:
//!
//! | paper artifact | function |
//! |---|---|
//! | Figure 1 (subsystem sizes)        | [`figure1`]  |
//! | Table 1 (function distribution)   | [`table1`]   |
//! | Table 2 (setup summary)           | [`table2`]   |
//! | Figure 4 (outcome distributions)  | [`figure4`]  |
//! | Figure 6 (crash causes)           | [`figure6`]  |
//! | Figure 7 (crash latency)          | [`figure7`]  |
//! | Figure 8 (error propagation)      | [`figure8`]  |
//! | Table 5 (most severe crashes)     | [`table5`]   |
//! | Tables 6/7 (case studies)         | [`case_study_table`] |
//!
//! Beyond the paper artifacts, [`trace_timeline`] and [`metrics_table`]
//! render [`kfi_trace`] event streams and counter registries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod trace;
pub use trace::{metrics_table, trace_timeline};

use kfi_core::{stats, CampaignResult, StudyResult};
use kfi_injector::{Campaign, Outcome};
use kfi_kernel::layout::cause_name;
use kfi_kernel::KernelImage;
use kfi_profiler::KernelProfile;
use std::fmt::Write as _;

fn bar(pct: f64, width: usize) -> String {
    let n = ((pct / 100.0) * width as f64).round() as usize;
    let mut s = String::new();
    for _ in 0..n.min(width) {
        s.push('#');
    }
    s
}

/// Figure 1: size of kernel subsystems in source lines.
pub fn figure1(image: &KernelImage) -> String {
    let mut s = String::from("Figure 1: Size of Kernel Subsystems (guest assembly source lines)\n");
    let max = image.loc_by_subsystem.values().copied().max().unwrap_or(1) as f64;
    for (sub, loc) in &image.loc_by_subsystem {
        let _ = writeln!(s, "{sub:>8}  {loc:>6}  {}", bar(100.0 * *loc as f64 / max, 40));
    }
    s
}

/// Table 1: function distribution among kernel modules and each
/// module's contribution to the core (95%-coverage) functions.
pub fn table1(profile: &KernelProfile, top_fraction: f64) -> String {
    let top = profile.top_covering(top_fraction);
    let core_count = top.len();
    let mut per_sub_total = std::collections::BTreeMap::new();
    let mut per_sub_core = std::collections::BTreeMap::new();
    for f in &profile.functions {
        *per_sub_total.entry(f.subsystem.clone()).or_insert(0usize) += 1;
    }
    for f in &top {
        *per_sub_core.entry(f.subsystem.clone()).or_insert(0usize) += 1;
    }
    let mut s = String::from("Table 1: Function Distribution Among Kernel Modules\n");
    let _ = writeln!(
        s,
        "{:<10} {:>18} {:>28}",
        "Subsystem", "profiled functions", "contribution to core"
    );
    let mut total = 0;
    for (sub, n) in &per_sub_total {
        let core = per_sub_core.get(sub).copied().unwrap_or(0);
        let core_s = if core > 0 { core.to_string() } else { "n/a".to_string() };
        let _ = writeln!(s, "{sub:<10} {n:>18} {core_s:>28}");
        total += n;
    }
    let _ = writeln!(s, "{:<10} {:>18} {:>28}", "Total", total, core_count);
    let _ = writeln!(
        s,
        "(top {core_count} functions cover {:.1}% of {} profiling values)",
        100.0 * top.iter().map(|f| f.samples).sum::<u64>() as f64
            / profile.total_samples.max(1) as f64,
        profile.total_samples
    );
    s
}

/// Table 2: experimental setup summary (paper vs. this reproduction).
pub fn table2() -> String {
    let mut s = String::from("Table 2: Experimental Setup Summary\n");
    let _ = writeln!(s, "{:<10} {:<16} {:<28} {}", "Group", "Aspect", "Paper", "This reproduction");
    for i in kfi_core::setup_summary() {
        let _ = writeln!(s, "{:<10} {:<16} {:<28} {}", i.group, i.label, i.paper, i.ours);
    }
    s
}

fn campaign_table(result: &CampaignResult) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<12} {:>9} {:>16} {:>18} {:>16} {:>14}",
        "Subsystem", "Injected", "Activated", "Not Manifested", "Fail Silence", "Crash/Hang"
    );
    let tallies = result.tallies();
    let mut funcs_per_sub: std::collections::BTreeMap<&str, std::collections::BTreeSet<&str>> =
        Default::default();
    for r in &result.records {
        funcs_per_sub
            .entry(r.target.subsystem.as_str())
            .or_default()
            .insert(r.target.function.as_str());
    }
    for (sub, t) in &tallies {
        let nf = funcs_per_sub.get(sub.as_str()).map(|s| s.len()).unwrap_or(0);
        let _ = writeln!(
            s,
            "{:<12} {:>9} {:>7} ({:>5.1}%) {:>9} ({:>5.1}%) {:>7} ({:>5.1}%) {:>6} ({:>4.1}%)",
            format!("{sub}[{nf}]"),
            t.injected,
            t.activated,
            t.activation_rate(),
            t.not_manifested,
            t.pct_not_manifested(),
            t.fsv,
            t.pct_fsv(),
            t.crash_or_hang(),
            t.pct_crash_or_hang(),
        );
    }
    let t = result.total();
    let _ = writeln!(
        s,
        "{:<12} {:>9} {:>7} ({:>5.1}%) {:>9} ({:>5.1}%) {:>7} ({:>5.1}%) {:>6} ({:>4.1}%)",
        format!("Total[{}]", result.functions_injected),
        t.injected,
        t.activated,
        t.activation_rate(),
        t.not_manifested,
        t.pct_not_manifested(),
        t.fsv,
        t.pct_fsv(),
        t.crash_or_hang(),
        t.pct_crash_or_hang(),
    );
    s
}

/// Figure 4: outcome statistics per campaign (tables + overall
/// distribution, the pie charts rendered as percentage bars).
pub fn figure4(study: &StudyResult) -> String {
    let mut s =
        String::from("Figure 4: Statistics on Error Activation and Failure Distribution\n\n");
    for c in [Campaign::A, Campaign::B, Campaign::C] {
        let Some(result) = study.campaigns.get(&c.letter()) else { continue };
        let _ = writeln!(s, "--- Campaign {}: {} ---", c.letter(), c.name());
        s.push_str(&campaign_table(result));
        let t = result.total();
        let act = t.activated.max(1) as f64;
        let _ = writeln!(s, "Activated-error distribution:");
        for (label, n) in [
            ("Not Manifested", t.not_manifested),
            ("Fail Silence Violation", t.fsv),
            ("Crash", t.crash),
            ("Hang", t.hang),
        ] {
            let p = 100.0 * n as f64 / act;
            let _ = writeln!(s, "  {label:<24} {p:>5.1}%  {}", bar(p, 40));
        }
        s.push('\n');
    }
    s
}

/// Figure 6: distribution of crash causes per campaign.
pub fn figure6(study: &StudyResult) -> String {
    let mut s = String::from("Figure 6: Distribution of Crash Causes\n\n");
    for c in [Campaign::A, Campaign::B, Campaign::C] {
        let Some(result) = study.campaigns.get(&c.letter()) else { continue };
        let causes = stats::crash_causes(&result.records);
        let total: usize = causes.values().sum();
        let _ = writeln!(s, "--- Campaign {} ({} dumped crashes) ---", c.letter(), total);
        let mut entries: Vec<(&u32, &usize)> = causes.iter().collect();
        entries.sort_by(|a, b| b.1.cmp(a.1));
        for (cause, n) in entries {
            let p = 100.0 * *n as f64 / total.max(1) as f64;
            let _ = writeln!(s, "  {:<48} {:>5.1}%  {}", cause_name(*cause), p, bar(p, 30));
        }
        let _ = writeln!(
            s,
            "  four major causes cover {:.1}% of crashes",
            stats::four_major_causes_share(&result.records)
        );
        s.push('\n');
    }
    s
}

/// Figure 7: crash latency (CPU cycles) per target subsystem, per
/// campaign.
pub fn figure7(study: &StudyResult) -> String {
    let mut s = String::from("Figure 7: Crash Latency in CPU Cycles\n\n");
    for c in [Campaign::A, Campaign::B, Campaign::C] {
        let Some(result) = study.campaigns.get(&c.letter()) else { continue };
        let _ = writeln!(s, "--- Campaign {} ---", c.letter());
        let _ = write!(s, "{:<10}", "subsystem");
        for (_, label) in stats::LATENCY_BUCKETS {
            let _ = write!(s, "{label:>10}");
        }
        s.push('\n');
        let mut subsystems: Vec<String> =
            result.records.iter().map(|r| r.target.subsystem.clone()).collect();
        subsystems.sort();
        subsystems.dedup();
        for sub in &subsystems {
            let h = stats::latency_histogram(&result.records, Some(sub));
            let total: usize = h.iter().sum();
            if total == 0 {
                continue;
            }
            let _ = write!(s, "{sub:<10}");
            for n in h {
                let _ = write!(s, "{:>9.1}%", 100.0 * n as f64 / total as f64);
            }
            s.push('\n');
        }
        let h = stats::latency_histogram(&result.records, None);
        let total: usize = h.iter().sum::<usize>().max(1);
        let _ = write!(s, "{:<10}", "all");
        for n in h {
            let _ = write!(s, "{:>9.1}%", 100.0 * n as f64 / total as f64);
        }
        s.push_str("\n\n");
    }
    s
}

/// Figure 8: error-propagation graphs for the `fs` and `kernel`
/// subsystems (the two the paper shows), per campaign.
pub fn figure8(study: &StudyResult) -> String {
    let mut s = String::from("Figure 8: Error Propagation\n\n");
    for from in ["fs", "kernel"] {
        for c in [Campaign::A, Campaign::B, Campaign::C] {
            let Some(result) = study.campaigns.get(&c.letter()) else { continue };
            let p = stats::propagation(&result.records, from);
            if p.total_crashes == 0 {
                continue;
            }
            let _ = writeln!(
                s,
                "({from}, campaign {}): {} crashes, {:.1}% inside {from}, {:.1}% propagated",
                c.letter(),
                p.total_crashes,
                p.self_share(from),
                p.propagation_share(from)
            );
            for (to, n) in &p.to {
                let share = 100.0 * *n as f64 / p.total_crashes as f64;
                let _ = write!(s, "    -> {to:<8} {share:>5.1}%  causes: ");
                if let Some(causes) = p.causes_at.get(to) {
                    let mut cs: Vec<(&u32, &usize)> = causes.iter().collect();
                    cs.sort_by(|a, b| b.1.cmp(a.1));
                    let total_to: usize = causes.values().sum();
                    for (cause, cn) in cs.iter().take(3) {
                        let _ = write!(
                            s,
                            "{} {:.0}%; ",
                            cause_name(**cause),
                            100.0 * **cn as f64 / total_to as f64
                        );
                    }
                }
                s.push('\n');
            }
        }
        s.push('\n');
    }
    let mut all: Vec<kfi_injector::RunRecord> = Vec::new();
    for r in study.campaigns.values() {
        all.extend(r.records.iter().cloned());
    }
    let _ = writeln!(
        s,
        "overall cross-subsystem propagation: {:.1}% of crashes",
        stats::overall_propagation_share(&all)
    );
    let cands = stats::assertion_candidates(&all);
    if !cands.is_empty() {
        let _ = writeln!(s, "suggested assertion sites (would intercept propagated errors):");
        for (f, sub, n) in cands.iter().take(6) {
            let _ = writeln!(s, "    {f} ({sub}): {n} escapes");
        }
    }
    s
}

/// Table 5: the most severe crashes (reformat required), with the
/// severe (fsck) cases listed for context.
pub fn table5(study: &StudyResult) -> String {
    let mut s = String::from("Table 5: Summary of Most Severe Crashes\n");
    let mut idx = 0;
    let mut severe_count = 0;
    for (letter, result) in &study.campaigns {
        for r in stats::most_severe_crashes(&result.records) {
            idx += 1;
            if let Outcome::Crash(i) = &r.outcome {
                let _ = writeln!(
                    s,
                    "{idx:>3}. campaign {letter}  {}:{}  insn {:#010x} byte {} mask {:#04x}  cause: {}",
                    r.target.subsystem,
                    r.target.function,
                    r.target.insn_addr,
                    r.target.byte_index,
                    r.target.bit_mask,
                    cause_name(i.cause)
                );
            }
        }
        severe_count += stats::severe_crashes(&result.records).len();
    }
    if idx == 0 {
        let _ = writeln!(s, "  (no most-severe crashes in this run)");
    }
    let _ =
        writeln!(s, "most severe (reformat): {idx}; severe or worse (fsck needed): {severe_count}");
    s
}

/// Tables 6/7-style case studies: before/after listings for a set of
/// interesting injections.
pub fn case_study_table(
    image: &KernelImage,
    cases: &[(&str, u32, usize, u8)], // (title, insn addr, byte, mask)
) -> String {
    let mut s = String::from("Case studies (before / after the injected bit flip)\n\n");
    for (i, (title, addr, byte, mask)) in cases.iter().enumerate() {
        let _ = writeln!(s, "--- case {}: {title} ---", i + 1);
        match kfi_dump::case_study(image, *addr, *byte, *mask, 12) {
            Some(cs) => s.push_str(&cs.format()),
            None => {
                let _ = writeln!(s, "(address {addr:#x} not in a known function)");
            }
        }
        s.push('\n');
    }
    s
}

/// Crash concentration per subsystem (the paper's observation that
/// `do_page_fault`, `schedule` and `zap_page_range` cause 70%/50%/30%
/// of their subsystems' crashes under random injection).
pub fn crash_concentration(study: &StudyResult) -> String {
    let mut s = String::from(
        "Crash concentration (campaign A, per injected subsystem)
",
    );
    let Some(a) = study.campaigns.get(&'A') else { return s };
    for sub in ["arch", "fs", "kernel", "mm"] {
        let top = stats::crash_concentration(&a.records, sub);
        if let Some((f, n, share)) = top.first() {
            let _ =
                writeln!(s, "  {sub:<8} {f:<28} {n:>5} crashes ({share:>5.1}% of the subsystem's)");
        }
    }
    s
}

/// The availability discussion of §7.1: total modeled downtime and the
/// per-severity budget argument ("to achieve 5 nines one can only
/// afford one most-severe failure in 12 years").
pub fn availability_summary(study: &StudyResult) -> String {
    let mut s = String::from(
        "Availability impact (modeled downtime)
",
    );
    let mut all: Vec<kfi_injector::RunRecord> = Vec::new();
    for r in study.campaigns.values() {
        all.extend(r.records.iter().cloned());
    }
    let mut by_sev: std::collections::BTreeMap<&str, usize> = Default::default();
    for r in &all {
        if let Outcome::Crash(i) = &r.outcome {
            *by_sev.entry(i.severity.name()).or_insert(0) += 1;
        }
    }
    for (sev, n) in &by_sev {
        let _ = writeln!(s, "  {sev:<12} {n} crashes");
    }
    let total = stats::total_downtime_secs(&all);
    let _ = writeln!(s, "  total modeled downtime: {total} s ({:.1} h)", total as f64 / 3600.0);
    let _ =
        writeln!(s, "  five-nines budget: 5 min/yr => one most-severe (1 h) failure per 12 years");
    s
}

/// Per-campaign execution metrics (the `CampaignResult::metrics`
/// aggregate): one [`metrics_table`] per campaign, in campaign order.
pub fn campaign_metrics(study: &StudyResult) -> String {
    let mut s = String::from("Campaign execution metrics\n\n");
    for (letter, result) in &study.campaigns {
        let _ = writeln!(s, "--- Campaign {letter} ---");
        s.push_str(&metrics_table(&result.metrics));
        s.push('\n');
    }
    s
}

/// Renders the complete study report (all tables and figures).
pub fn full_report(
    image: &KernelImage,
    profile: &KernelProfile,
    study: &StudyResult,
    top_fraction: f64,
) -> String {
    let mut s = String::new();
    s.push_str(&figure1(image));
    s.push('\n');
    s.push_str(&table1(profile, top_fraction));
    s.push('\n');
    s.push_str(&table2());
    s.push('\n');
    s.push_str(&figure4(study));
    s.push_str(&figure6(study));
    s.push_str(&figure7(study));
    s.push_str(&figure8(study));
    s.push('\n');
    s.push_str(&table5(study));
    s.push('\n');
    s.push_str(&crash_concentration(study));
    s.push('\n');
    s.push_str(&availability_summary(study));
    s.push('\n');
    s.push_str(&campaign_metrics(study));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_renders() {
        let t = table2();
        assert!(t.contains("UnixBench"));
        assert!(t.contains("kfi-injector"));
    }

    #[test]
    fn figure1_renders() {
        let image = kfi_kernel::build_kernel(Default::default()).unwrap();
        let f = figure1(&image);
        assert!(f.contains("fs"));
        assert!(f.contains("#"));
    }

    #[test]
    fn bars_clamp() {
        assert_eq!(bar(0.0, 10), "");
        assert_eq!(bar(100.0, 10).len(), 10);
        assert_eq!(bar(250.0, 10).len(), 10);
    }
}

#[cfg(test)]
mod synthetic_tests {
    use super::*;
    use kfi_core::{CampaignResult, StudyResult};
    use kfi_injector::{Campaign, CrashInfo, InjectionTarget, Outcome, RunRecord, Severity};
    use std::collections::BTreeMap;

    fn rec(campaign: Campaign, subsys: &str, func: &str, outcome: Outcome) -> RunRecord {
        RunRecord {
            target: InjectionTarget {
                campaign,
                function: func.into(),
                subsystem: subsys.into(),
                insn_addr: 0xc010_0000,
                insn_len: 2,
                byte_index: 0,
                bit_mask: 1,
                is_branch: campaign != Campaign::A,
            },
            mode: 0,
            outcome,
            activation_tsc: Some(10),
            run_cycles: 100,
            sanitizer_violations: 0,
        }
    }

    fn crash(cause: u32, latency: u64, sev: Severity, in_sub: &str) -> Outcome {
        Outcome::Crash(CrashInfo {
            cause,
            eip: 0xc010_0100,
            function: Some("victim".into()),
            subsystem: in_sub.into(),
            latency,
            severity: sev,
            triple_fault: false,
        })
    }

    fn study() -> StudyResult {
        use kfi_kernel::layout::causes as c;
        let mut campaigns = BTreeMap::new();
        let a = vec![
            rec(Campaign::A, "fs", "pipe_read", Outcome::NotActivated),
            rec(Campaign::A, "fs", "pipe_read", Outcome::NotManifested),
            rec(Campaign::A, "fs", "pipe_read", crash(c::NULL_POINTER, 5, Severity::Normal, "fs")),
            rec(
                Campaign::A,
                "fs",
                "sys_read",
                crash(c::PAGING_REQUEST, 200_000, Severity::Severe, "kernel"),
            ),
            rec(Campaign::A, "mm", "do_wp_page", crash(c::GPF, 50, Severity::MostSevere, "mm")),
            rec(Campaign::A, "mm", "do_wp_page", Outcome::Hang),
        ];
        let b = vec![rec(Campaign::B, "kernel", "schedule", Outcome::NotManifested)];
        let cc = vec![rec(
            Campaign::C,
            "fs",
            "pipe_read",
            crash(c::INVALID_OP, 3, Severity::Normal, "fs"),
        )];
        campaigns.insert(
            'A',
            CampaignResult {
                campaign: Campaign::A,
                records: a,
                functions_injected: 3,
                metrics: Default::default(),
            },
        );
        campaigns.insert(
            'B',
            CampaignResult {
                campaign: Campaign::B,
                records: b,
                functions_injected: 1,
                metrics: Default::default(),
            },
        );
        campaigns.insert(
            'C',
            CampaignResult {
                campaign: Campaign::C,
                records: cc,
                functions_injected: 1,
                metrics: Default::default(),
            },
        );
        StudyResult { campaigns, seed: 1 }
    }

    #[test]
    fn figure4_renders_all_campaigns() {
        let s = figure4(&study());
        assert!(s.contains("Campaign A"));
        assert!(s.contains("Campaign B"));
        assert!(s.contains("Campaign C"));
        assert!(s.contains("fs["));
        assert!(s.contains("Total["));
    }

    #[test]
    fn figure6_orders_causes() {
        let s = figure6(&study());
        assert!(s.contains("NULL pointer"));
        assert!(s.contains("four major causes"));
    }

    #[test]
    fn figure7_has_all_buckets() {
        let s = figure7(&study());
        for label in ["<10", "10-100", "100-1k", "1k-10k", "10k-100k", ">100k"] {
            assert!(s.contains(label), "missing {label}");
        }
    }

    #[test]
    fn figure8_reports_propagation() {
        let s = figure8(&study());
        assert!(s.contains("(fs, campaign A)"));
        assert!(s.contains("propagated"));
        assert!(s.contains("overall cross-subsystem propagation"));
    }

    #[test]
    fn campaign_metrics_renders_per_campaign() {
        let mut st = study();
        let m = &mut st.campaigns.get_mut(&'A').unwrap().metrics;
        m.runs = 6;
        m.decode_hits = 500;
        m.dirty_pages = 9;
        let s = campaign_metrics(&st);
        assert!(s.contains("--- Campaign A ---"));
        assert!(s.contains("--- Campaign C ---"));
        assert!(s.contains("decode cache hits"));
        assert!(s.contains("dirty pages"));
    }

    #[test]
    fn table5_lists_most_severe() {
        let s = table5(&study());
        assert!(s.contains("do_wp_page"));
        assert!(s.contains("most severe (reformat): 1"));
    }

    #[test]
    fn concentration_and_availability_render() {
        let s = crash_concentration(&study());
        assert!(s.contains("fs"));
        let s = availability_summary(&study());
        assert!(s.contains("total modeled downtime"));
        // 240 + 330 + 3600 + 240 = three crashes + C crash
        assert!(s.contains("4410 s"));
    }
}
