//! Renderers for [`kfi_trace`] event timelines and metrics.

use kfi_trace::{outcome, subsystem, CycleHist, Event, EventKind, Metrics};
use std::fmt::Write as _;

/// Renders an event stream (oldest first) as an aligned plain-text
/// timeline: TSC, mnemonic, then a human-readable detail column. The
/// output is deterministic, so it doubles as a golden-test transcript.
pub fn trace_timeline(events: &[Event]) -> String {
    let mut s = String::from("TSC           EV    DETAIL\n");
    for ev in events {
        let detail = match ev.kind {
            EventKind::ExceptionRaised { vector, eip, error_code } => match error_code {
                Some(e) => format!("vector {vector} at {eip:#010x} err={e:#x}"),
                None => format!("vector {vector} at {eip:#010x}"),
            },
            EventKind::Cr3Switch { old, new } => {
                format!("{old:#010x} -> {new:#010x}")
            }
            EventKind::SyscallEntry { nr } => format!("nr {nr}"),
            EventKind::WatchdogTick { eip } => format!("at {eip:#010x}"),
            EventKind::IpiDelivered { eip } => format!("at {eip:#010x}"),
            EventKind::InjectionArmed { addr } => format!("breakpoint at {addr:#010x}"),
            EventKind::TriggerHit { addr } => format!("at {addr:#010x}"),
            EventKind::BitFlipApplied { addr, mask } => {
                format!("byte {addr:#010x} ^= {mask:#04x}")
            }
            EventKind::SnapshotRestore { mode } => format!("workload mode {mode}"),
            EventKind::OutcomeClassified { code } => outcome::name(code).to_string(),
            EventKind::SubsystemTransition { from, to } => {
                format!("{} -> {}", subsystem::name(from), subsystem::name(to))
            }
        };
        let _ = writeln!(s, "{:>12}  {:<4}  {}", ev.tsc, ev.kind.mnemonic(), detail);
    }
    s
}

fn hist_lines(s: &mut String, label: &str, h: &CycleHist) {
    let rows = h.nonzero();
    if rows.is_empty() {
        return;
    }
    let _ = writeln!(s, "{label} (log2 buckets):");
    let max = rows.iter().map(|(_, c)| *c).max().unwrap_or(1) as f64;
    for (floor, count) in rows {
        let width = ((count as f64 / max) * 30.0).round() as usize;
        let _ = writeln!(s, "  >= {floor:>12}  {count:>8}  {}", "#".repeat(width.max(1)));
    }
}

/// Renders a [`Metrics`] registry as an aligned counter table followed
/// by the non-empty histograms.
pub fn metrics_table(m: &Metrics) -> String {
    let mut s = String::from("Metrics\n");
    let mut row = |name: &str, v: u64| {
        let _ = writeln!(s, "  {name:<28} {v:>14}");
    };
    row("runs", m.runs);
    row("runs not activated", m.runs_not_activated);
    row("snapshot restores", m.snapshot_restores);
    row("instructions retired", m.instructions);
    row("faults delivered", m.faults());
    row("syscalls", m.syscalls);
    row("timer irqs", m.timer_irqs);
    row("tlb hits", m.tlb_hits);
    row("tlb miss walks", m.tlb_miss_walks);
    row("decode cache hits", m.decode_hits);
    row("decode cache misses", m.decode_misses);
    row("decode invalidations", m.decode_invalidations);
    row("dirty pages", m.dirty_pages);
    row("run cycles total", m.run_cycles_total);
    // Supervisor/sanitizer counters are zero on a healthy unsupervised
    // run; render them only when something happened, so transcripts
    // from before the supervisor existed stay stable.
    for (name, v) in [
        ("sanitizer violations", m.sanitizer_violations),
        ("rig panics caught", m.rig_panics),
        ("run retries", m.run_retries),
        ("quarantined runs", m.quarantined_runs),
        ("wall watchdog fired", m.wall_watchdog_fired),
        ("journal flushes", m.journal_flushes),
    ] {
        if v > 0 {
            row(name, v);
        }
    }
    for (v, n) in m.faults_by_vector.iter().enumerate().filter(|(_, n)| **n > 0) {
        let _ = writeln!(s, "    fault vector {v:<13} {n:>14}");
    }
    let _ = writeln!(s, "  outcomes:");
    for code in 0..m.outcomes.len() as u8 {
        let n = m.outcome(code);
        if n > 0 {
            let _ = writeln!(s, "    {:<26} {n:>14}", outcome::name(code));
        }
    }
    hist_lines(&mut s, "  run cycles", &m.run_cycles);
    hist_lines(&mut s, "  crash latency", &m.crash_latency);
    if m.crash_latency_paper.total() > 0 {
        let _ = writeln!(s, "  crash latency (paper buckets):");
        for (label, count) in m.crash_latency_paper.rows() {
            if count > 0 {
                let _ = writeln!(s, "    {label:<26} {count:>14}");
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_lines_match_events() {
        let events = vec![
            Event { tsc: 10, kind: EventKind::SnapshotRestore { mode: 1 } },
            Event { tsc: 20, kind: EventKind::InjectionArmed { addr: 0xc000_1000 } },
            Event { tsc: 900, kind: EventKind::TriggerHit { addr: 0xc000_1000 } },
            Event { tsc: 950, kind: EventKind::OutcomeClassified { code: outcome::CRASH } },
            Event { tsc: 950, kind: EventKind::SubsystemTransition { from: 2, to: 7 } },
        ];
        let text = trace_timeline(&events);
        // Header + one line per event.
        assert_eq!(text.lines().count(), events.len() + 1);
        assert!(text.contains("ARM"));
        assert!(text.contains("crash"));
        assert!(text.contains("fs -> mm"));
    }

    #[test]
    fn metrics_table_renders_counts() {
        let mut m = Metrics::default();
        m.runs = 3;
        m.instructions = 1_000;
        m.faults_by_vector[14] = 2;
        m.decode_hits = 900;
        m.decode_misses = 100;
        m.dirty_pages = 12;
        m.record_outcome(outcome::CRASH);
        m.record_crash_latency(500);
        let text = metrics_table(&m);
        assert!(text.contains("fault vector 14"));
        assert!(text.contains("crash"));
        assert!(text.contains("crash latency"));
        assert!(text.contains("decode cache hits"));
        assert!(text.contains("crash latency (paper buckets):"));
        assert!(text.contains("100-1k"));
    }
}
