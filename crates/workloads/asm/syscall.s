# syscall.s — raw system-call rate: getpid/time/yield in a tight loop.

.text
main:
    push %ebx
    push %esi
    movl $200, %ebx
    xorl %esi, %esi
y_loop:
    call sys_getpid
    addl %eax, %esi
    call sys_time
    call sys_getpid
    addl %eax, %esi
    decl %ebx
    jnz y_loop
    movl %esi, %eax           # 400 * pid
    call sys_report
    pop %esi
    pop %ebx
    xorl %eax, %eax
    ret
