# spawn.s — process-creation throughput: fork + immediate exit + wait.

.text
main:
    push %ebx
    push %esi
    movl $12, %ebx            # rounds
    xorl %esi, %esi           # pid accumulator
s_loop:
    call sys_fork
    testl %eax, %eax
    jnz s_parent
    xorl %eax, %eax
    call sys_exit
s_parent:
    testl %eax, %eax
    js fail
    incl %esi
    xorl %eax, %eax
    xorl %edx, %edx
    call sys_waitpid
    testl %eax, %eax
    js fail
    decl %ebx
    jnz s_loop
    movl %esi, %eax           # 12 successful spawns
    call sys_report
    pop %esi
    pop %ebx
    xorl %eax, %eax
    ret
fail:
    movl $1, %eax
    call sys_report
    pop %esi
    pop %ebx
    movl $1, %eax
    ret
