# init.s — pid 1: a minimal supervisor, like a real init. Spawns the
# benchmark runner, waits for it, and shuts the system down. Keeping
# pid 1's syscall surface tiny means injected errors usually kill the
# runner or a workload (an application abort the paper counts as a fail
# silence violation) rather than panicking the kernel by killing init.

.text
main:
    call sys_fork
    testl %eax, %eax
    jnz supervise
    # child: become the runner
    movl $runner_path, %eax
    call sys_execve
    movl $127, %eax
    call sys_exit
supervise:
    movl %eax, %eax           # runner pid
    movl $status, %edx
    call sys_waitpid
    movl status, %eax
    testl %eax, %eax
    jz shutdown
    movl $failed_msg, %eax
    call print
shutdown:
    movl $0xFEE1DEAD, %eax
    call sys_reboot
    movl $1, %eax
    ret

.data
runner_path: .asciz "/bin/runner"
failed_msg:  .asciz "init: runner failed\n"
status:      .long 0
