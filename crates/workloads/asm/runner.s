# runner.s — the benchmark runner (pid 2), exec'd by the supervisor
# init. Announces itself to the host monitor (the snapshot point), reads
# the host-selected run mode, and runs the workloads.

.text
main:
    # snapshot point: the host snapshots the machine here and pokes the
    # run mode before resuming
    movl $0x512, %eax         # EVT_RUNNER
    call sys_mark
    movl $banner, %eax
    call print
    call sys_getmode
    movl %eax, %esi           # mode
    cmpl $0xFF, %esi
    je run_all
    cmpl $NR_WORKLOADS, %esi
    jae run_all
    movl %esi, %eax
    call run_one
    jmp done
run_all:
    xorl %edi, %edi
1:  cmpl $NR_WORKLOADS, %edi
    jae done
    movl %edi, %eax
    call run_one
    incl %edi
    jmp 1b
done:
    movl $done_msg, %eax
    call print
    xorl %eax, %eax
    ret

# run_one(index=%eax): fork + exec + wait + report.
.type run_one, @function
run_one:
    push %ebx
    push %esi
    movl %eax, %ebx
    movl $run_msg, %eax
    call print
    movl name_table(,%ebx,4), %eax
    call print
    movl $colon, %eax
    call print
    movl %ebx, %eax
    addl $0x111, %eax
    call sys_mark
    call sys_fork
    testl %eax, %eax
    jnz ro_parent
    movl path_table(,%ebx,4), %eax
    call sys_execve
    movl $execfail, %eax
    call print
    movl $127, %eax
    call sys_exit
ro_parent:
    movl %eax, %esi
    movl %eax, %eax
    movl $status, %edx
    call sys_waitpid
    movl status, %eax
    call print_dec
    movl $nl, %eax
    call print
    pop %esi
    pop %ebx
    ret

.equ NR_WORKLOADS, 8

.data
banner:   .asciz "runner: kfi benchmark runner\n"
run_msg:  .asciz "runner: run "
colon:    .asciz " -> "
nl:       .asciz "\n"
done_msg: .asciz "runner: all done\n"
execfail: .asciz "runner: exec failed\n"
status:   .long 0
name_table:
    .long n0, n1, n2, n3, n4, n5, n6, n7
path_table:
    .long p0, p1, p2, p3, p4, p5, p6, p7
n0: .asciz "context1"
n1: .asciz "dhry"
n2: .asciz "fstime"
n3: .asciz "hanoi"
n4: .asciz "looper"
n5: .asciz "pipe"
n6: .asciz "spawn"
n7: .asciz "syscall"
p0: .asciz "/bin/context1"
p1: .asciz "/bin/dhry"
p2: .asciz "/bin/fstime"
p3: .asciz "/bin/hanoi"
p4: .asciz "/bin/looper"
p5: .asciz "/bin/pipe"
p6: .asciz "/bin/spawn"
p7: .asciz "/bin/syscall"
