# netstorm.s — traffic-shaped net driver (server-variant kernel):
# allocates a loopback socket and pumps datagram bursts through its
# ring — fill all 8 slots, drain all 8, eight rounds — the saturating
# send/receive pattern of a busy server socket.

.text
main:
    push %ebx
    push %esi
    push %edi
    movl $1, %eax             # socketcall SYS_SOCKET
    xorl %edx, %edx
    xorl %ecx, %ecx
    call sock3
    testl %eax, %eax
    js fail
    movl %eax, %edi           # socket
    xorl %esi, %esi           # checksum
    movl $8, %ebx             # rounds
n_round:
    movl $8, %eax
    movl %eax, burst
n_send:
    movl burst, %ecx
    shll $4, %ecx
    addl %ebx, %ecx           # payload = slot*16 + round
    movl $9, %eax             # socketcall SYS_SEND
    movl %edi, %edx
    call sock3
    testl %eax, %eax
    jnz fail
    movl burst, %eax
    decl %eax
    movl %eax, burst
    testl %eax, %eax
    jnz n_send
    movl $8, %eax
    movl %eax, burst
n_recv:
    movl $10, %eax            # socketcall SYS_RECV
    movl %edi, %edx
    xorl %ecx, %ecx
    call sock3
    testl %eax, %eax
    js fail
    addl %eax, %esi
    movl burst, %eax
    decl %eax
    movl %eax, burst
    testl %eax, %eax
    jnz n_recv
    decl %ebx
    jnz n_round
    movl %esi, %eax           # sum of all 64 datagrams
    call sys_report
    pop %edi
    pop %esi
    pop %ebx
    xorl %eax, %eax
    ret
fail:
    movl $1, %eax
    call sys_report
    pop %edi
    pop %esi
    pop %ebx
    movl $1, %eax
    ret

# sock3(call=%eax, sock=%edx, val=%ecx): three-argument sys_socketcall
# wrapper (no runtime stub exists for socketcall).
.type sock3, @function
sock3:
    push %ebx
    movl %eax, %ebx
    push %ecx
    movl %edx, %ecx
    pop %edx
    movl $SYS_SOCKETCALL, %eax
    int $0x80
    pop %ebx
    ret

.data
burst: .long 0
