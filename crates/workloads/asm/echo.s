# echo.s — traffic-shaped request/response echo over the ipc message
# queues (server-variant kernel): the parent sends requests on queue 0
# and a forked echo server bounces replies (+1000) back on queue 1,
# the classic multi-user client/server shape squeezed into two tasks.

.text
main:
    push %ebx
    push %esi
    push %edi
    call sys_fork
    testl %eax, %eax
    jnz e_parent
    # child: echo server, answers 16 requests then exits
    movl $16, %esi
1:  movl $4, %eax             # msgrcv(q0)
    xorl %edx, %edx
    xorl %ecx, %ecx
    call sem3
    testl %eax, %eax
    js e_child_fail
    movl %eax, %ecx
    addl $1000, %ecx
    movl $3, %eax             # msgsnd(q1, req + 1000)
    movl $1, %edx
    call sem3
    testl %eax, %eax
    jnz e_child_fail
    decl %esi
    jnz 1b
    xorl %eax, %eax
    call sys_exit
e_child_fail:
    movl $2, %eax
    call sys_exit
e_parent:
    movl %eax, %edi           # server pid
    xorl %esi, %esi           # checksum
    movl $16, %ebx            # requests
2:  movl %ebx, %ecx
    addl $0x100, %ecx         # request payload
    movl $3, %eax             # msgsnd(q0, req)
    xorl %edx, %edx
    call sem3
    testl %eax, %eax
    jnz fail
    movl $4, %eax             # msgrcv(q1) -> reply
    movl $1, %edx
    xorl %ecx, %ecx
    call sem3
    testl %eax, %eax
    js fail
    addl %eax, %esi
    decl %ebx
    jnz 2b
    movl %edi, %eax
    movl $status, %edx
    call sys_waitpid
    movl status, %eax
    testl %eax, %eax
    jnz fail
    movl %esi, %eax           # sum of the 16 echoed replies
    call sys_report
    pop %edi
    pop %esi
    pop %ebx
    xorl %eax, %eax
    ret
fail:
    movl $1, %eax
    call sys_report
    pop %edi
    pop %esi
    pop %ebx
    movl $1, %eax
    ret

# sem3(op=%eax, q=%edx, val=%ecx): three-argument sys_sem wrapper — the
# runtime stub marshals only two args, msgsnd needs the payload third.
.type sem3, @function
sem3:
    push %ebx
    movl %eax, %ebx
    push %ecx
    movl %edx, %ecx
    pop %edx
    movl $SYS_SEM, %eax
    int $0x80
    pop %ebx
    ret

.data
status: .long 0
