# pipe.s — UnixBench pipe analog: single process bounces a 128-byte
# buffer through a pipe.

.text
main:
    push %ebx
    push %esi
    push %edi
    movl $fds, %eax
    call sys_pipe
    testl %eax, %eax
    jnz fail
    xorl %esi, %esi           # checksum
    movl $60, %edi            # rounds
p_loop:
    movl fds+4, %eax
    movl $buf, %edx
    movl $128, %ecx
    call sys_write
    cmpl $128, %eax
    jne fail
    movl fds, %eax
    movl $buf, %edx
    movl $128, %ecx
    call sys_read
    cmpl $128, %eax
    jne fail
    # mutate + fold
    movl buf, %eax
    addl %edi, %eax
    movl %eax, buf
    addl %eax, %esi
    decl %edi
    jnz p_loop
    movl %esi, %eax
    call sys_report
    pop %edi
    pop %esi
    pop %ebx
    xorl %eax, %eax
    ret
fail:
    movl $1, %eax
    call sys_report
    pop %edi
    pop %esi
    pop %ebx
    movl $1, %eax
    ret

.data
fds: .long 0, 0
buf: .space 128
