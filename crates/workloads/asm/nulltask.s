# nulltask.s — smallest possible program (exec target for looper).
.text
main:
    xorl %eax, %eax
    ret
