# context1.s — UnixBench context1 analog: two processes exchange a
# counter through two pipes, forcing a context switch per hop.

.text
main:
    movl $p1, %eax
    call sys_pipe
    testl %eax, %eax
    jnz fail
    movl $p2, %eax
    call sys_pipe
    testl %eax, %eax
    jnz fail
    call sys_fork
    testl %eax, %eax
    jnz parent
# child: read p1, increment, write p2
    xorl %edi, %edi
c_loop:
    cmpl $ROUNDS, %edi
    jae c_done
    movl p1, %eax
    movl $word, %edx
    movl $4, %ecx
    call sys_read
    cmpl $4, %eax
    jne fail
    incl word
    movl p2+4, %eax
    movl $word, %edx
    movl $4, %ecx
    call sys_write
    incl %edi
    jmp c_loop
c_done:
    xorl %eax, %eax
    call sys_exit
parent:
    movl %eax, %ebp
    xorl %edi, %edi
    movl $0, word2
p_loop:
    cmpl $ROUNDS, %edi
    jae p_done
    movl p1+4, %eax
    movl $word2, %edx
    movl $4, %ecx
    call sys_write
    movl p2, %eax
    movl $word2, %edx
    movl $4, %ecx
    call sys_read
    cmpl $4, %eax
    jne fail
    incl word2
    incl %edi
    jmp p_loop
p_done:
    movl %ebp, %eax
    xorl %edx, %edx
    call sys_waitpid
    # counter made ROUNDS round trips, +1 by child +1 by us per round
    movl word2, %eax
    call sys_report
    xorl %eax, %eax
    ret
fail:
    movl $1, %eax
    call sys_report
    movl $1, %eax
    ret

.equ ROUNDS, 40

.data
p1:    .long 0, 0
p2:    .long 0, 0
word:  .long 0
word2: .long 0
