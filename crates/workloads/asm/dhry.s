# dhry.s — Dhrystone-flavoured integer/string mix: arithmetic, record
# copies, string comparison, array indexing. Pure CPU, one syscall at
# the end to report the checksum.

.text
main:
    push %ebx
    push %esi
    push %edi
    push %ebp
    movl $2000, %ebp          # outer loop count
    xorl %ebx, %ebx           # checksum
d_loop:
    # arithmetic mix
    movl %ebp, %eax
    imul $13, %eax, %ecx
    addl %ecx, %ebx
    movl %ebp, %eax
    xorl %edx, %edx
    movl $7, %ecx
    divl %ecx
    addl %edx, %ebx           # + (i mod 7)
    # "record assignment": copy 32 bytes via rep movsl
    movl $rec_a, %esi
    movl $rec_b, %edi
    movl $8, %ecx
    cld
    rep movsl
    # string compare
    movl $str_a, %esi
    movl $str_b, %edi
    movl $12, %ecx
    repe cmpsb
    je 1f
    incl %ebx
1:  # array walk
    movl %ebp, %eax
    andl $31, %eax
    movl arr(,%eax,4), %ecx
    addl %ebp, %ecx
    movl %ecx, arr(,%eax,4)
    addl %ecx, %ebx
    decl %ebp
    jnz d_loop
    movl %ebx, %eax
    call sys_report
    pop %ebp
    pop %edi
    pop %esi
    pop %ebx
    xorl %eax, %eax
    ret

.data
rec_a: .long 1, 2, 3, 4, 5, 6, 7, 8
rec_b: .space 32
str_a: .asciz "DHRYSTONE PG"
str_b: .asciz "DHRYSTONE PG"
arr:   .space 128
