# sysstorm.s — syscall storm: a traffic-shaped burst mixing process,
# ipc-semaphore, and pipe syscalls at the highest rate the guest can
# issue them — the "every user hammering the kernel at once" shape.
# Runs on the base kernel too (only base sem ops 0/1/2 are used).

.text
main:
    push %ebx
    push %esi
    movl $fds, %eax
    call sys_pipe
    testl %eax, %eax
    jnz fail
    movl $64, %ebx            # rounds
    xorl %esi, %esi           # checksum
ss_loop:
    call sys_getpid
    addl %eax, %esi
    call sys_yield
    # semaphore hammer: semget(2), P(2), V(2)
    xorl %eax, %eax
    movl $2, %edx
    call sys_sem
    addl %eax, %esi
    movl $1, %eax
    movl $2, %edx
    call sys_sem
    movl $2, %eax
    movl $2, %edx
    call sys_sem
    # bounce one word through the pipe
    movl %ebx, word
    movl fds+4, %eax
    movl $word, %edx
    movl $4, %ecx
    call sys_write
    cmpl $4, %eax
    jne fail
    movl fds, %eax
    movl $word, %edx
    movl $4, %ecx
    call sys_read
    cmpl $4, %eax
    jne fail
    addl word, %esi
    call sys_getpid
    addl %eax, %esi
    decl %ebx
    jnz ss_loop
    movl %esi, %eax
    call sys_report
    pop %esi
    pop %ebx
    xorl %eax, %eax
    ret
fail:
    movl $1, %eax
    call sys_report
    pop %esi
    pop %ebx
    movl $1, %eax
    ret

.data
fds:  .long 0, 0
word: .long 0
