# looper.s — execl-throughput analog: repeatedly fork + exec a trivial
# program and wait for it.

.text
main:
    push %ebx
    movl $5, %ebx
l_loop:
    call sys_fork
    testl %eax, %eax
    jnz l_parent
    movl $nullpath, %eax
    call sys_execve
    movl $127, %eax
    call sys_exit
l_parent:
    xorl %edx, %edx
    call sys_waitpid
    testl %eax, %eax
    js fail
    decl %ebx
    jnz l_loop
    movl $505, %eax
    call sys_report
    pop %ebx
    xorl %eax, %eax
    ret
fail:
    movl $1, %eax
    call sys_report
    pop %ebx
    movl $1, %eax
    ret

.data
nullpath: .asciz "/bin/nulltask"
