# forkflood.s — fork-heavy spawn flood: three concurrent children per
# round (the most the NR_TASKS=8 table allows alongside init, the
# runner, and this parent, with headroom for the scheduler), each
# exiting with a distinct status the parent folds into the checksum.
# Runs on the base kernel too.

.text
main:
    push %ebx
    push %esi
    push %edi
    movl $6, %edi             # rounds
    xorl %esi, %esi           # checksum
ff_round:
    movl $3, %ebx             # children this round
ff_spawn:
    call sys_fork
    testl %eax, %eax
    jnz ff_next
    # child: exit with status = child index
    movl %ebx, %eax
    call sys_exit
ff_next:
    js fail
    decl %ebx
    jnz ff_spawn
    # reap all three, summing statuses (sum is reap-order-independent)
    movl $3, %ebx
ff_reap:
    xorl %eax, %eax
    movl $status, %edx
    call sys_waitpid
    testl %eax, %eax
    js fail
    addl status, %esi
    decl %ebx
    jnz ff_reap
    decl %edi
    jnz ff_round
    movl %esi, %eax           # 6 rounds * (1+2+3)
    call sys_report
    pop %edi
    pop %esi
    pop %ebx
    xorl %eax, %eax
    ret
fail:
    movl $1, %eax
    call sys_report
    pop %edi
    pop %esi
    pop %ebx
    movl $1, %eax
    ret

.data
status: .long 0
