# hanoi.s — recursion benchmark: towers of Hanoi, counting moves.

.text
main:
    movl $0, moves
    movl $10, %eax            # discs
    call hanoi
    movl moves, %eax          # 2^10 - 1 = 1023
    call sys_report
    xorl %eax, %eax
    ret

# hanoi(n=%eax)
.type hanoi, @function
hanoi:
    cmpl $1, %eax
    jbe base
    push %eax
    decl %eax
    call hanoi                # move n-1
    incl moves                # move the big disc
    pop %eax
    decl %eax
    call hanoi                # move n-1 again
    ret
base:
    incl moves
    ret

.data
moves: .long 0
