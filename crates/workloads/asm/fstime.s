# fstime.s — file I/O throughput analog: write an 8 KiB file in 512 B
# chunks, read it back in 1 KiB chunks, checksum, unlink.

.text
main:
    push %ebx
    push %esi
    push %edi
    # fill the write buffer with a pattern
    xorl %ecx, %ecx
1:  cmpl $512, %ecx
    jae 2f
    movl %ecx, %eax
    addl $0xA5, %eax
    movb %al, wbuf(%ecx)
    incl %ecx
    jmp 1b
2:  # create
    movl $path, %eax
    movl $0x242, %edx
    call sys_open
    testl %eax, %eax
    js fail
    movl %eax, %ebx           # fd
    # 16 writes of 512B
    movl $16, %edi
w_loop:
    movl %ebx, %eax
    movl $wbuf, %edx
    movl $512, %ecx
    call sys_write
    cmpl $512, %eax
    jne fail
    decl %edi
    jnz w_loop
    movl %ebx, %eax
    call sys_close
    # reopen + read back 8 x 1KiB, checksum
    movl $path, %eax
    xorl %edx, %edx
    call sys_open
    testl %eax, %eax
    js fail
    movl %eax, %ebx
    xorl %esi, %esi           # checksum
    movl $8, %edi
r_loop:
    movl %ebx, %eax
    movl $rbuf, %edx
    movl $1024, %ecx
    call sys_read
    cmpl $1024, %eax
    jne fail
    # add all dwords
    xorl %ecx, %ecx
3:  cmpl $256, %ecx
    jae 4f
    addl rbuf(,%ecx,4), %esi
    incl %ecx
    jmp 3b
4:  decl %edi
    jnz r_loop
    movl %ebx, %eax
    call sys_close
    movl $path, %eax
    call sys_unlink
    movl %esi, %eax
    call sys_report
    pop %edi
    pop %esi
    pop %ebx
    xorl %eax, %eax
    ret
fail:
    movl $1, %eax
    call sys_report
    movl $1, %eax
    pop %edi
    pop %esi
    pop %ebx
    ret

.data
path: .asciz "/fstime.tmp"
wbuf: .space 512
rbuf: .space 1024
