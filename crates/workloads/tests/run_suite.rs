//! Run every workload (and the full suite) on the booted kernel and
//! check the deterministic results.

use kfi_kernel::{boot, build_kernel, mkfs, BootConfig, KernelBuildOptions};
use kfi_machine::{MonitorEvent, RunExit};
use kfi_workloads::{suite_files, MODE_ALL, WORKLOADS};

fn results(m: &kfi_machine::Machine) -> Vec<u32> {
    m.monitor_events()
        .iter()
        .filter_map(|(_, e)| match e {
            MonitorEvent::Result(v) => Some(*v),
            _ => None,
        })
        .collect()
}

fn run_mode(mode: u32) -> kfi_machine::Machine {
    let image = build_kernel(KernelBuildOptions::default()).unwrap();
    let files = suite_files().unwrap();
    let fsimg = mkfs(2048, &files);
    let mut m = boot(&image, fsimg.disk, &BootConfig { run_mode: mode, ..Default::default() });
    let exit = m.run(120_000_000);
    assert_eq!(exit, RunExit::Halted, "mode {mode}: console:\n{}", m.console_string());
    m
}

#[test]
fn full_suite_runs_clean() {
    let m = run_mode(MODE_ALL);
    let console = m.console_string();
    for w in WORKLOADS {
        assert!(console.contains(&format!("runner: run {w}")), "{console}");
    }
    assert!(console.contains("runner: all done"), "{console}");
    assert!(!console.contains("exec failed"), "{console}");
    assert!(!console.contains("Oops"), "{console}");
    let rs = results(&m);
    assert_eq!(rs.len(), WORKLOADS.len(), "{console}\n{rs:?}");
    assert!(!rs.contains(&1), "a workload failed: {rs:?}\n{console}");
    for w in WORKLOADS {
        assert!(console.contains(&format!("runner: run {w} -> 0")), "{console}");
    }
}

#[test]
fn hanoi_reports_exactly_1023_moves() {
    let m = run_mode(3);
    assert_eq!(results(&m), vec![1023], "{}", m.console_string());
}

#[test]
fn context1_counts_roundtrips() {
    let m = run_mode(0);
    assert_eq!(results(&m), vec![80], "{}", m.console_string());
}

#[test]
fn spawn_reports_spawn_count() {
    let m = run_mode(6);
    assert_eq!(results(&m), vec![12], "{}", m.console_string());
}

#[test]
fn syscall_reports_pid_sum() {
    let m = run_mode(7);
    let rs = results(&m);
    assert_eq!(rs.len(), 1);
    assert_eq!(rs[0] % 400, 0, "{}", m.console_string());
    assert!(rs[0] > 0);
}

#[test]
fn single_modes_are_deterministic() {
    let a = run_mode(1);
    let b = run_mode(1);
    assert_eq!(a.console_string(), b.console_string());
    assert_eq!(results(&a), results(&b));
    assert_eq!(a.cpu.tsc, b.cpu.tsc, "even timing must be deterministic");
}

#[test]
fn fstime_leaves_fs_clean() {
    let image = build_kernel(KernelBuildOptions::default()).unwrap();
    let files = suite_files().unwrap();
    let fsimg = mkfs(2048, &files);
    let manifest = fsimg.manifest.clone();
    let mut m = boot(&image, fsimg.disk, &BootConfig { run_mode: 2, ..Default::default() });
    assert_eq!(m.run(120_000_000), RunExit::Halted, "{}", m.console_string());
    let disk = m.disk.take().unwrap();
    assert_eq!(
        kfi_kernel::fsck(disk.bytes(), &manifest),
        kfi_kernel::FsckReport::Clean,
        "{}",
        m.console_string()
    );
}
