//! # kfi-workloads — the UnixBench-analog guest workload suite
//!
//! Eight user-space benchmark programs mirroring the programs the paper
//! selected from UnixBench (`context1`, `dhry`, `fstime`, `hanoi`,
//! `looper`, `pipe`, `spawn`, `syscall`), plus the `/init` runner that
//! executes them and the `nulltask` exec target. Built as KBIN flat
//! binaries and installed into the filesystem image.
//!
//! A second, traffic-shaped suite ([`Suite::Traffic`]) appends four
//! server workloads emulating heavy multi-user traffic — `echo`
//! (ipc message-queue request/response), `netstorm` (loopback socket
//! bursts), `sysstorm` (mixed syscall storm), `forkflood` (concurrent
//! spawn flood). The first two need the server-variant kernel
//! (`KernelBuildOptions { server: true }`); the mode table, the
//! `/bin` contents, and the runner's dispatch tables are all derived
//! from one workload list per suite (see [`runner_source`]).
//!
//! Each workload is deterministic and finishes by reporting a checksum
//! through `sys_report` — the golden-run oracle the injector compares
//! against to classify fail-silence violations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use kfi_asm::AsmError;
use kfi_kernel::mkfs::FileSpec;
use kfi_kernel::{build_with_runtime, standard_fixtures};

/// The benchmark programs, in run-mode order (mode `i` runs
/// `WORKLOADS[i]`; mode `0xFF` runs the full suite).
pub const WORKLOADS: &[&str] =
    &["context1", "dhry", "fstime", "hanoi", "looper", "pipe", "spawn", "syscall"];

/// The traffic-shaped server workloads, appended after [`WORKLOADS`]
/// in [`Suite::Traffic`] mode order (mode `8` runs `echo`, …).
pub const TRAFFIC_WORKLOADS: &[&str] = &["echo", "netstorm", "sysstorm", "forkflood"];

/// Run mode value that runs the complete suite.
pub const MODE_ALL: u32 = 0xff;

/// The workload sources (name → assembly).
pub const SOURCES: &[(&str, &str)] = &[
    ("context1", include_str!("../asm/context1.s")),
    ("dhry", include_str!("../asm/dhry.s")),
    ("fstime", include_str!("../asm/fstime.s")),
    ("hanoi", include_str!("../asm/hanoi.s")),
    ("looper", include_str!("../asm/looper.s")),
    ("pipe", include_str!("../asm/pipe.s")),
    ("spawn", include_str!("../asm/spawn.s")),
    ("syscall", include_str!("../asm/syscall.s")),
    ("nulltask", include_str!("../asm/nulltask.s")),
    ("runner", include_str!("../asm/runner.s")),
];

/// The traffic workload sources (name → assembly), in
/// [`TRAFFIC_WORKLOADS`] order.
pub const TRAFFIC_SOURCES: &[(&str, &str)] = &[
    ("echo", include_str!("../asm/echo.s")),
    ("netstorm", include_str!("../asm/netstorm.s")),
    ("sysstorm", include_str!("../asm/sysstorm.s")),
    ("forkflood", include_str!("../asm/forkflood.s")),
];

/// The `/init` runner source.
pub const INIT_SOURCE: &str = include_str!("../asm/init.s");

/// A workload suite: the paper's eight UnixBench analogs, or those
/// plus the four traffic-shaped server workloads. The suite is the
/// single source of truth for the mode table (`mode_of`), the
/// filesystem contents (`files`), and the runner dispatch tables
/// (`runner_source(&suite.workloads())`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Suite {
    /// The eight paper workloads (the golden-corpus configuration).
    #[default]
    Paper,
    /// Paper workloads plus [`TRAFFIC_WORKLOADS`]; `echo`/`netstorm`
    /// need the server-variant kernel.
    Traffic,
}

impl Suite {
    /// The suite's workloads in run-mode order.
    pub fn workloads(self) -> Vec<&'static str> {
        let mut w: Vec<&'static str> = WORKLOADS.to_vec();
        if self == Suite::Traffic {
            w.extend_from_slice(TRAFFIC_WORKLOADS);
        }
        w
    }

    /// The run-mode value for a named workload in this suite.
    pub fn mode_of(self, name: &str) -> Option<u32> {
        self.workloads().iter().position(|w| *w == name).map(|i| i as u32)
    }

    /// Number of single-workload run modes (the golden-store `n_modes`).
    pub fn n_modes(self) -> u32 {
        self.workloads().len() as u32
    }

    /// Builds the suite's filesystem file set. [`Suite::Paper`] is
    /// exactly [`suite_files`] (the checked-in runner); the traffic
    /// suite swaps in a generated runner whose dispatch tables cover
    /// all twelve workloads and appends the four traffic binaries.
    ///
    /// # Errors
    ///
    /// Assembly errors in any program (with file/line positions).
    pub fn files(self) -> Result<Vec<FileSpec>, AsmError> {
        match self {
            Suite::Paper => suite_files(),
            Suite::Traffic => {
                let mut files = standard_fixtures();
                files.push(FileSpec {
                    path: "/init".into(),
                    data: build_with_runtime("init.s", INIT_SOURCE)?.bytes,
                });
                let runner = runner_source(&self.workloads());
                for (name, src) in SOURCES {
                    let src = if *name == "runner" { runner.as_str() } else { *src };
                    files.push(FileSpec {
                        path: format!("/bin/{name}"),
                        data: build_with_runtime(name, src)?.bytes,
                    });
                }
                for (name, src) in TRAFFIC_SOURCES {
                    files.push(FileSpec {
                        path: format!("/bin/{name}"),
                        data: build_with_runtime(name, src)?.bytes,
                    });
                }
                Ok(files)
            }
        }
    }
}

/// Builds the full file set for a benchmark-ready filesystem image:
/// `/init`, `/bin/<workload>` for every workload, `/bin/nulltask`, and
/// the standard fixtures.
///
/// # Errors
///
/// Assembly errors in any program (with file/line positions).
pub fn suite_files() -> Result<Vec<FileSpec>, AsmError> {
    let mut files = standard_fixtures();
    files.push(FileSpec {
        path: "/init".into(),
        data: build_with_runtime("init.s", INIT_SOURCE)?.bytes,
    });
    for (name, src) in SOURCES {
        files.push(FileSpec {
            path: format!("/bin/{name}"),
            data: build_with_runtime(name, src)?.bytes,
        });
    }
    Ok(files)
}

/// The run-mode value for a named workload (paper suite; see
/// [`Suite::mode_of`] for suite-aware resolution).
pub fn mode_of(name: &str) -> Option<u32> {
    Suite::Paper.mode_of(name)
}

/// The fixed code half of the runner source (everything above the
/// generated `NR_WORKLOADS` equate and dispatch tables).
const RUNNER_CODE: &str = r#"# runner.s — the benchmark runner (pid 2), exec'd by the supervisor
# init. Announces itself to the host monitor (the snapshot point), reads
# the host-selected run mode, and runs the workloads.

.text
main:
    # snapshot point: the host snapshots the machine here and pokes the
    # run mode before resuming
    movl $0x512, %eax         # EVT_RUNNER
    call sys_mark
    movl $banner, %eax
    call print
    call sys_getmode
    movl %eax, %esi           # mode
    cmpl $0xFF, %esi
    je run_all
    cmpl $NR_WORKLOADS, %esi
    jae run_all
    movl %esi, %eax
    call run_one
    jmp done
run_all:
    xorl %edi, %edi
1:  cmpl $NR_WORKLOADS, %edi
    jae done
    movl %edi, %eax
    call run_one
    incl %edi
    jmp 1b
done:
    movl $done_msg, %eax
    call print
    xorl %eax, %eax
    ret

# run_one(index=%eax): fork + exec + wait + report.
.type run_one, @function
run_one:
    push %ebx
    push %esi
    movl %eax, %ebx
    movl $run_msg, %eax
    call print
    movl name_table(,%ebx,4), %eax
    call print
    movl $colon, %eax
    call print
    movl %ebx, %eax
    addl $0x111, %eax
    call sys_mark
    call sys_fork
    testl %eax, %eax
    jnz ro_parent
    movl path_table(,%ebx,4), %eax
    call sys_execve
    movl $execfail, %eax
    call print
    movl $127, %eax
    call sys_exit
ro_parent:
    movl %eax, %esi
    movl %eax, %eax
    movl $status, %edx
    call sys_waitpid
    movl status, %eax
    call print_dec
    movl $nl, %eax
    call print
    pop %esi
    pop %ebx
    ret
"#;

/// Generates the runner source for a workload list: the fixed code
/// half plus `NR_WORKLOADS` and the name/path dispatch tables. For
/// [`WORKLOADS`] this reproduces `asm/runner.s` byte-for-byte
/// (tested), so the golden corpora cannot drift; the traffic suite
/// uses it to dispatch all twelve workloads.
pub fn runner_source(workloads: &[&str]) -> String {
    use std::fmt::Write as _;
    let mut s = String::from(RUNNER_CODE);
    let _ = write!(
        s,
        "\n.equ NR_WORKLOADS, {}\n\n.data\n\
         banner:   .asciz \"runner: kfi benchmark runner\\n\"\n\
         run_msg:  .asciz \"runner: run \"\n\
         colon:    .asciz \" -> \"\n\
         nl:       .asciz \"\\n\"\n\
         done_msg: .asciz \"runner: all done\\n\"\n\
         execfail: .asciz \"runner: exec failed\\n\"\n\
         status:   .long 0\n",
        workloads.len()
    );
    for (table, prefix) in [("name_table", 'n'), ("path_table", 'p')] {
        let _ = writeln!(s, "{table}:");
        let refs: Vec<String> = (0..workloads.len()).map(|i| format!("{prefix}{i}")).collect();
        let _ = writeln!(s, "    .long {}", refs.join(", "));
    }
    for (i, w) in workloads.iter().enumerate() {
        let _ = writeln!(s, "n{i}: .asciz \"{w}\"");
    }
    for (i, w) in workloads.iter().enumerate() {
        let _ = writeln!(s, "p{i}: .asciz \"/bin/{w}\"");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_programs_assemble() {
        let files = suite_files().expect("suite assembles");
        assert!(files.iter().any(|f| f.path == "/init"));
        for w in WORKLOADS {
            assert!(files.iter().any(|f| f.path == format!("/bin/{w}")), "missing {w}");
        }
        assert!(files.iter().any(|f| f.path == "/bin/nulltask"));
        assert!(files.iter().any(|f| f.path == "/bin/runner"));
        for f in &files {
            assert!(!f.data.is_empty(), "{} is empty", f.path);
        }
    }

    #[test]
    fn traffic_suite_assembles_and_extends_paper() {
        let paper = Suite::Paper.files().expect("paper suite assembles");
        let traffic = Suite::Traffic.files().expect("traffic suite assembles");
        // Paper suite is exactly the legacy file set.
        let legacy = suite_files().unwrap();
        assert_eq!(paper.len(), legacy.len());
        for (a, b) in paper.iter().zip(&legacy) {
            assert_eq!(a.path, b.path);
            assert_eq!(a.data, b.data, "{} differs", a.path);
        }
        // Traffic adds exactly the four new binaries, keeps everything
        // else at the same paths, and swaps in a wider runner.
        assert_eq!(traffic.len(), paper.len() + TRAFFIC_WORKLOADS.len());
        for w in TRAFFIC_WORKLOADS {
            let f = traffic
                .iter()
                .find(|f| f.path == format!("/bin/{w}"))
                .unwrap_or_else(|| panic!("missing {w}"));
            assert!(!f.data.is_empty());
        }
        let pr = paper.iter().find(|f| f.path == "/bin/runner").unwrap();
        let tr = traffic.iter().find(|f| f.path == "/bin/runner").unwrap();
        assert_ne!(pr.data, tr.data, "traffic runner must dispatch more modes");
    }

    #[test]
    fn generated_runner_matches_checked_in_source() {
        // The checked-in runner.s and the generator output must be
        // byte-identical for the paper list — one source of truth, and
        // the golden corpora (built from the checked-in file) cannot
        // drift from what the generator would produce.
        let checked_in = SOURCES.iter().find(|(n, _)| *n == "runner").unwrap().1;
        assert_eq!(runner_source(WORKLOADS), checked_in);
    }

    #[test]
    fn mode_table_is_single_source_of_truth() {
        // WORKLOADS order, mode_of, and the runner dispatch tables all
        // agree, for both suites.
        for suite in [Suite::Paper, Suite::Traffic] {
            let ws = suite.workloads();
            let runner = runner_source(&ws);
            assert!(runner.contains(&format!(".equ NR_WORKLOADS, {}\n", ws.len())));
            for (i, w) in ws.iter().enumerate() {
                assert_eq!(suite.mode_of(w), Some(i as u32), "{w}");
                assert!(runner.contains(&format!("n{i}: .asciz \"{w}\"\n")), "{w} name");
                assert!(runner.contains(&format!("p{i}: .asciz \"/bin/{w}\"\n")), "{w} path");
            }
            assert_eq!(suite.n_modes(), ws.len() as u32);
        }
    }

    #[test]
    fn modes_resolve() {
        assert_eq!(mode_of("context1"), Some(0));
        assert_eq!(mode_of("syscall"), Some(7));
        assert_eq!(mode_of("nope"), None);
        // Traffic modes extend, never renumber.
        assert_eq!(Suite::Traffic.mode_of("syscall"), Some(7));
        assert_eq!(Suite::Traffic.mode_of("echo"), Some(8));
        assert_eq!(Suite::Traffic.mode_of("forkflood"), Some(11));
        assert_eq!(Suite::Paper.mode_of("echo"), None);
    }
}
