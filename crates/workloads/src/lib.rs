//! # kfi-workloads — the UnixBench-analog guest workload suite
//!
//! Eight user-space benchmark programs mirroring the programs the paper
//! selected from UnixBench (`context1`, `dhry`, `fstime`, `hanoi`,
//! `looper`, `pipe`, `spawn`, `syscall`), plus the `/init` runner that
//! executes them and the `nulltask` exec target. Built as KBIN flat
//! binaries and installed into the filesystem image.
//!
//! Each workload is deterministic and finishes by reporting a checksum
//! through `sys_report` — the golden-run oracle the injector compares
//! against to classify fail-silence violations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use kfi_asm::AsmError;
use kfi_kernel::mkfs::FileSpec;
use kfi_kernel::{build_with_runtime, standard_fixtures};

/// The benchmark programs, in run-mode order (mode `i` runs
/// `WORKLOADS[i]`; mode `0xFF` runs the full suite).
pub const WORKLOADS: &[&str] =
    &["context1", "dhry", "fstime", "hanoi", "looper", "pipe", "spawn", "syscall"];

/// Run mode value that runs the complete suite.
pub const MODE_ALL: u32 = 0xff;

/// The workload sources (name → assembly).
pub const SOURCES: &[(&str, &str)] = &[
    ("context1", include_str!("../asm/context1.s")),
    ("dhry", include_str!("../asm/dhry.s")),
    ("fstime", include_str!("../asm/fstime.s")),
    ("hanoi", include_str!("../asm/hanoi.s")),
    ("looper", include_str!("../asm/looper.s")),
    ("pipe", include_str!("../asm/pipe.s")),
    ("spawn", include_str!("../asm/spawn.s")),
    ("syscall", include_str!("../asm/syscall.s")),
    ("nulltask", include_str!("../asm/nulltask.s")),
    ("runner", include_str!("../asm/runner.s")),
];

/// The `/init` runner source.
pub const INIT_SOURCE: &str = include_str!("../asm/init.s");

/// Builds the full file set for a benchmark-ready filesystem image:
/// `/init`, `/bin/<workload>` for every workload, `/bin/nulltask`, and
/// the standard fixtures.
///
/// # Errors
///
/// Assembly errors in any program (with file/line positions).
pub fn suite_files() -> Result<Vec<FileSpec>, AsmError> {
    let mut files = standard_fixtures();
    files.push(FileSpec {
        path: "/init".into(),
        data: build_with_runtime("init.s", INIT_SOURCE)?.bytes,
    });
    for (name, src) in SOURCES {
        files.push(FileSpec {
            path: format!("/bin/{name}"),
            data: build_with_runtime(name, src)?.bytes,
        });
    }
    Ok(files)
}

/// The run-mode value for a named workload.
pub fn mode_of(name: &str) -> Option<u32> {
    WORKLOADS.iter().position(|w| *w == name).map(|i| i as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_programs_assemble() {
        let files = suite_files().expect("suite assembles");
        assert!(files.iter().any(|f| f.path == "/init"));
        for w in WORKLOADS {
            assert!(files.iter().any(|f| f.path == format!("/bin/{w}")), "missing {w}");
        }
        assert!(files.iter().any(|f| f.path == "/bin/nulltask"));
        assert!(files.iter().any(|f| f.path == "/bin/runner"));
        for f in &files {
            assert!(!f.data.is_empty(), "{} is empty", f.path);
        }
    }

    #[test]
    fn modes_resolve() {
        assert_eq!(mode_of("context1"), Some(0));
        assert_eq!(mode_of("syscall"), Some(7));
        assert_eq!(mode_of("nope"), None);
    }
}
