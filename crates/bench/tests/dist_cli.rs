//! End-to-end distributed-runner robustness through the real
//! `repro_all` binary: worker pools of any size, chaos SIGKILLs
//! mid-campaign, and wedged handshakes must all print a dataset
//! byte-identical to the in-process supervisor — with zero
//! silently-lost plan indices, proven from the journal.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::{Command, Stdio};

const BASE_ARGS: &[&str] = &["--cap", "2", "--seed", "11", "--csv"];
const SEED: u64 = 11;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("kfi-dist-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}-{}", std::process::id()))
}

/// Runs `repro_all` to completion, returning (stdout, stderr).
fn run_repro(extra: &[&str]) -> (String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_repro_all"))
        .args(BASE_ARGS)
        .args(extra)
        .stderr(Stdio::piped())
        .output()
        .expect("spawn repro_all");
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(out.status.success(), "repro_all failed with {:?}\nstderr:\n{stderr}", out.status);
    (String::from_utf8(out.stdout).expect("stdout is UTF-8"), stderr)
}

/// Extracts `key=value` from the `[kfi] dist:` stderr summary.
fn dist_stat(stderr: &str, key: &str) -> u64 {
    let line = stderr
        .lines()
        .rfind(|l| l.starts_with("[kfi] dist: spawned="))
        .unwrap_or_else(|| panic!("no dist summary in stderr:\n{stderr}"));
    line.split_whitespace()
        .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
        .unwrap_or_else(|| panic!("no `{key}=` in: {line}"))
        .parse()
        .expect("stat parses")
}

/// Asserts the journal covers every plan index of every campaign
/// exactly once — the "zero silently-lost plan indices" check. The
/// per-campaign plan sizes are read off the CSV record rows, which the
/// byte-identity assertions anchor to the in-process truth.
fn assert_journal_covers_plan(journal: &PathBuf, stdout: &str) {
    let mut plan_sizes: BTreeMap<char, usize> = BTreeMap::new();
    for l in stdout.lines() {
        let mut fields = l.split(',');
        if let Some(c @ ("A" | "B" | "C")) = fields.next() {
            // Record rows have a function name second; metrics rows put
            // a run count there. Count only record rows.
            if fields.next().is_some_and(|f| f.parse::<u64>().is_err()) {
                *plan_sizes.entry(c.chars().next().unwrap()).or_default() += 1;
            }
        }
    }
    assert_eq!(plan_sizes.len(), 3, "CSV is missing campaigns: {plan_sizes:?}");

    let entries = kfi_core::journal::read_journal(journal, SEED).expect("journal reads");
    let mut seen: BTreeMap<char, Vec<usize>> = BTreeMap::new();
    for e in &entries {
        seen.entry(e.campaign).or_default().push(e.index);
    }
    for (campaign, n) in plan_sizes {
        let mut indices = seen.remove(&campaign).unwrap_or_default();
        indices.sort_unstable();
        assert_eq!(
            indices,
            (0..n).collect::<Vec<_>>(),
            "campaign {campaign}: journal does not cover the plan exactly once"
        );
    }
    assert!(seen.is_empty(), "journal has entries for unknown campaigns: {seen:?}");
}

#[test]
fn dist_stdout_matches_in_process_at_any_worker_count() {
    let (reference, _) = run_repro(&["--threads", "1"]);
    assert!(reference.contains("campaign,function,subsystem"), "dataset missing from stdout");
    let mut wire_bytes = Vec::new();
    for workers in ["1", "2", "4"] {
        let (out, err) = run_repro(&["--dist-workers", workers]);
        assert_eq!(out, reference, "dist stdout differs at {workers} workers");
        wire_bytes.push(dist_stat(&err, "wire_bytes"));
    }
    assert!(wire_bytes[0] > 0, "no bytes streamed over worker pipes");
    assert!(
        wire_bytes.iter().all(|w| *w == wire_bytes[0]),
        "wire_bytes must be worker-count invariant: {wire_bytes:?}"
    );
}

#[test]
fn chaos_kills_workers_without_disturbing_a_byte() {
    // The in-process truth, journaled.
    let jref = tmp("journal-ref");
    let _ = std::fs::remove_file(&jref);
    let (reference, _) = run_repro(&["--threads", "1", "--journal", jref.to_str().unwrap()]);

    // Chaos: 4 workers, seeded kill/stall/crash schedule. At least one
    // worker dies by SIGKILL mid-campaign (the schedule's first event
    // is always a kill) and its lease is reassigned.
    let jchaos = tmp("journal-chaos");
    let _ = std::fs::remove_file(&jchaos);
    let (out, err) =
        run_repro(&["--dist-workers", "4", "--chaos", "1", "--journal", jchaos.to_str().unwrap()]);
    assert!(dist_stat(&err, "chaos_kills") >= 1, "chaos never killed a worker:\n{err}");
    assert!(dist_stat(&err, "respawned") >= 1, "no worker was respawned:\n{err}");
    assert_eq!(out, reference, "chaos disturbed the dataset");

    // Journal bytes identical to the in-process run, and no plan index
    // lost or duplicated despite the kills.
    let a = std::fs::read(&jref).unwrap();
    let b = std::fs::read(&jchaos).unwrap();
    assert_eq!(a, b, "chaos disturbed the journal bytes");
    assert_journal_covers_plan(&jchaos, &out);

    let _ = std::fs::remove_file(&jref);
    let _ = std::fs::remove_file(&jchaos);
}

#[test]
fn wedged_handshake_is_reaped_and_lease_reassigned() {
    let (reference, _) = run_repro(&["--threads", "1"]);
    // The first spawned worker parks before its handshake; a short boot
    // budget reaps it, respawns the slot, and the campaign completes.
    let (out, err) = run_repro(&[
        "--dist-workers",
        "1",
        "--wedge-first-handshake",
        "--dist-handshake-ms",
        "700",
    ]);
    assert!(dist_stat(&err, "handshake_timeouts") >= 1, "wedged worker never reaped:\n{err}");
    assert!(dist_stat(&err, "respawned") >= 1, "reaped slot never respawned:\n{err}");
    assert_eq!(out, reference, "handshake reap disturbed the dataset");
}
