//! End-to-end supervisor robustness through the real `repro_all`
//! binary: a SIGKILL mid-campaign followed by `--resume` must print a
//! byte-identical dataset, and an injected worker panic must lose zero
//! records.

use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::Duration;

const BASE_ARGS: &[&str] = &["--cap", "2", "--seed", "11", "--csv"];

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("kfi-bench-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}-{}", std::process::id()))
}

/// Runs `repro_all` to completion and returns its stdout (report +
/// CSV dataset). stderr is passed through for debuggability.
fn run_repro(extra: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_repro_all"))
        .args(BASE_ARGS)
        .args(extra)
        .stderr(Stdio::inherit())
        .output()
        .expect("spawn repro_all");
    assert!(out.status.success(), "repro_all failed with {:?}", out.status);
    String::from_utf8(out.stdout).expect("stdout is UTF-8")
}

/// Blanks the supervisor's own bookkeeping — the "rig panics caught" /
/// "run retries" metrics-table rows and the matching metrics-CSV
/// columns. Those legitimately differ between a clean run and one with
/// injected harness faults; *everything else* (every record row, every
/// paper table) must not.
fn without_supervisor_counters(s: &str) -> String {
    let mut out = String::new();
    for l in s.lines() {
        let t = l.trim_start();
        if t.starts_with("rig panics caught") || t.starts_with("run retries") {
            continue;
        }
        let fields: Vec<&str> = l.split(',').collect();
        if fields.len() == 20 && matches!(fields[0], "A" | "B" | "C") {
            let mut f: Vec<String> = fields.into_iter().map(str::to_string).collect();
            f[16] = "_".into(); // rig_panics
            f[17] = "_".into(); // run_retries
            out.push_str(&f.join(","));
        } else {
            out.push_str(l);
        }
        out.push('\n');
    }
    out
}

#[test]
fn injected_worker_panics_lose_zero_records() {
    let clean = run_repro(&["--threads", "2"]);
    assert!(clean.contains("campaign,function,subsystem"), "dataset missing from stdout");
    // Transient panics at several job indices: workers die, their rigs
    // are rebuilt, the jobs retry. Outside the supervisor's own panic
    // and retry counters, stdout must not change by one byte.
    let panicked = run_repro(&["--threads", "2", "--inject-panic", "0,3,7"]);
    assert!(panicked.contains("rig panics caught"), "the injected panics never happened");
    assert_eq!(
        without_supervisor_counters(&clean),
        without_supervisor_counters(&panicked),
        "worker panics must not disturb the dataset"
    );
}

#[test]
fn sigkill_then_resume_reproduces_the_dataset() {
    let journal = tmp("journal");
    let _ = std::fs::remove_file(&journal);
    let jarg = journal.to_str().unwrap();

    // The uninterrupted truth, journal off.
    let clean = run_repro(&["--threads", "1"]);

    // Start a journaled run and SIGKILL it once the journal shows the
    // campaign underway (a few fsync'd entries). If the child somehow
    // finishes first the kill degrades to a full-journal resume —
    // still a correct, just weaker, exercise.
    let mut child = Command::new(env!("CARGO_BIN_EXE_repro_all"))
        .args(BASE_ARGS)
        .args(["--threads", "1", "--journal", jarg])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn journaled repro_all");
    for _ in 0..500 {
        if child.try_wait().expect("poll child").is_some() {
            break;
        }
        if std::fs::metadata(&journal).map(|m| m.len() > 2048).unwrap_or(false) {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let _ = child.kill(); // SIGKILL on unix
    let _ = child.wait();

    // Resume at the same worker count...
    let resumed1 = run_repro(&["--threads", "1", "--journal", jarg, "--resume"]);
    assert_eq!(clean, resumed1, "resume at 1 worker must be byte-identical");

    // ...and at a different one: the journal is worker-count agnostic.
    let resumed2 = run_repro(&["--threads", "2", "--journal", jarg, "--resume"]);
    assert_eq!(clean, resumed2, "resume at 2 workers must be byte-identical");

    let _ = std::fs::remove_file(&journal);
}
