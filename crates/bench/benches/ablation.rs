//! Design-choice ablations with measurable cost: assembling the two
//! kernel variants, mkfs/fsck, and the golden-oracle comparison.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("build");
    g.sample_size(10);
    g.bench_function("assemble_kernel_with_assertions", |b| {
        b.iter(|| {
            criterion::black_box(
                kfi_kernel::build_kernel(kfi_kernel::KernelBuildOptions {
                    assertions: true,
                    ..Default::default()
                })
                .unwrap()
                .program
                .text
                .bytes
                .len(),
            )
        })
    });
    g.bench_function("assemble_kernel_no_assertions", |b| {
        b.iter(|| {
            criterion::black_box(
                kfi_kernel::build_kernel(kfi_kernel::KernelBuildOptions {
                    assertions: false,
                    ..Default::default()
                })
                .unwrap()
                .program
                .text
                .bytes
                .len(),
            )
        })
    });
    g.finish();

    let files = kfi_workloads::suite_files().unwrap();
    c.bench_function("mkfs_2MiB", |b| {
        b.iter(|| criterion::black_box(kfi_kernel::mkfs(2048, &files).disk.sectors()))
    });

    let img = kfi_kernel::mkfs(2048, &files);
    let bytes = img.disk.bytes().to_vec();
    c.bench_function("fsck_clean_image", |b| {
        b.iter(|| {
            assert!(matches!(
                kfi_kernel::fsck(&bytes, &img.manifest),
                kfi_kernel::FsckReport::Clean
            ))
        })
    });
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
