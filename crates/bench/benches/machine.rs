//! Machine core throughput: raw interpretation, boot, snapshot/restore.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use kfi_machine::{Machine, MachineConfig};

fn tight_loop_machine_with(decode_cache: bool) -> Machine {
    // 1M-iteration dec/jnz loop + cli/hlt.
    let mut m =
        Machine::new(MachineConfig { timer_enabled: false, decode_cache, ..Default::default() });
    m.mem.load(
        0x1000,
        &[
            0xb9, 0x40, 0x42, 0x0f, 0x00, // mov $1_000_000, %ecx
            0x49, // dec %ecx
            0x75, 0xfd, // jnz -3
            0xfa, 0xf4, // cli; hlt
        ],
    );
    m.cpu.eip = 0x1000;
    m.cpu.set_reg(4, 0x8000);
    m
}

fn tight_loop_machine() -> Machine {
    tight_loop_machine_with(true)
}

fn bench_machine(c: &mut Criterion) {
    let mut g = c.benchmark_group("machine");
    g.sample_size(10);
    g.throughput(Throughput::Elements(2_000_000));
    g.bench_function("interpret_2M_insns", |b| {
        b.iter(|| {
            let mut m = tight_loop_machine();
            assert_eq!(m.run(u64::MAX / 2), kfi_machine::RunExit::Halted);
            criterion::black_box(m.counters().instructions)
        })
    });
    // The decode-cache ablation: every fetch pays the full decoder.
    g.bench_function("interpret_2M_insns_no_decode_cache", |b| {
        b.iter(|| {
            let mut m = tight_loop_machine_with(false);
            assert_eq!(m.run(u64::MAX / 2), kfi_machine::RunExit::Halted);
            criterion::black_box(m.counters().instructions)
        })
    });
    // Same workload with a ring sink installed: the loop raises no
    // traps, so this measures the pure cost of carrying the sink
    // through the exec loop (the ≤2% TraceSink::Null budget, plus the
    // enabled-but-idle case).
    g.bench_function("interpret_2M_insns_ring_sink", |b| {
        b.iter(|| {
            let mut m = tight_loop_machine();
            m.set_trace_sink(kfi_trace::TraceSink::ring(256));
            assert_eq!(m.run(u64::MAX / 2), kfi_machine::RunExit::Halted);
            criterion::black_box(m.counters().instructions)
        })
    });
    g.finish();

    let image = kfi_kernel::build_kernel(Default::default()).unwrap();
    let files = kfi_workloads::suite_files().unwrap();
    let fsimg = kfi_kernel::mkfs(2048, &files);
    let mut g = c.benchmark_group("boot");
    g.sample_size(10);
    g.bench_function("cold_boot_to_init", |b| {
        b.iter(|| {
            let mut m = kfi_kernel::boot(&image, fsimg.disk.clone(), &Default::default());
            // run until the BOOT_OK event arrives
            loop {
                match m.step() {
                    kfi_machine::StepEvent::Executed => {}
                    e => panic!("boot ended early: {e:?}"),
                }
                if let Some((_, kfi_machine::MonitorEvent::Event(v))) = m.monitor_events().last() {
                    if *v == kfi_kernel::layout::events::BOOT_OK {
                        break;
                    }
                }
            }
            criterion::black_box(m.cpu.tsc)
        })
    });
    g.finish();

    let m = kfi_kernel::boot(&image, fsimg.disk.clone(), &Default::default());
    let snap = m.snapshot();
    let mut m2 = kfi_kernel::boot(&image, fsimg.disk.clone(), &Default::default());
    // After the first restore syncs the dirty tracking, back-to-back
    // restores against the same snapshot copy only dirtied pages.
    c.bench_function("snapshot_restore_8MiB", |b| {
        b.iter(|| {
            m2.restore(&snap);
            criterion::black_box(m2.cpu.eip)
        })
    });
    // Alternating two snapshots defeats the dirty tracking, so every
    // restore pays the full O(memory) copy — the pre-optimization cost.
    let snap_b = m.snapshot();
    c.bench_function("snapshot_restore_8MiB_full", |b| {
        b.iter(|| {
            m2.restore(&snap);
            m2.restore(&snap_b);
            criterion::black_box(m2.cpu.eip)
        })
    });
}

criterion_group!(benches, bench_machine);
criterion_main!(benches);
