//! Decoder/encoder throughput over the real kernel text.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_decode(c: &mut Criterion) {
    let image = kfi_kernel::build_kernel(Default::default()).unwrap();
    let text = image.program.text.bytes.clone();
    let mut g = c.benchmark_group("decode");
    g.throughput(Throughput::Bytes(text.len() as u64));
    g.bench_function("kernel_text_linear", |b| {
        b.iter(|| {
            let mut pos = 0usize;
            let mut n = 0usize;
            while pos < text.len() {
                match kfi_isa::decode(&text[pos..]) {
                    Ok(i) => pos += i.len as usize,
                    Err(_) => pos += 1,
                }
                n += 1;
            }
            criterion::black_box(n)
        })
    });
    // Worst case: every byte offset (simulates desynchronized streams).
    g.bench_function("every_offset", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for pos in 0..text.len().min(4096) {
                if kfi_isa::decode(&text[pos..]).is_ok() {
                    n += 1;
                }
            }
            criterion::black_box(n)
        })
    });
    g.finish();

    c.bench_function("disassemble_function", |b| {
        let f = image.program.symbols.lookup("do_generic_file_read").unwrap();
        let bytes = image.program.slice_at(f.value, f.size as usize).unwrap();
        b.iter(|| kfi_asm::disassemble(criterion::black_box(bytes), f.value))
    });
}

criterion_group!(benches, bench_decode);
criterion_main!(benches);
