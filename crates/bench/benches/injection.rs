//! Injection-run throughput: what one experiment costs end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use kfi_injector::{plan_function, Campaign};
use rand::SeedableRng;

fn bench_injection(c: &mut Criterion) {
    let opts = kfi_bench::ReproOptions { cap: Some(4), ..Default::default() };
    let exp = kfi_bench::prepare(&opts);
    let mut rig = exp.make_rig().expect("rig");
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let targets = plan_function(&exp.image, "pipe_read", Campaign::A, &mut rng);
    let mode = kfi_workloads::mode_of("context1").unwrap();

    let mut g = c.benchmark_group("injection");
    g.sample_size(10);
    g.bench_function("run_one_activated", |b| {
        b.iter(|| criterion::black_box(rig.run_one(&targets[0], mode)))
    });
    g.bench_function("run_one_not_activated", |b| {
        // pipe_read never runs under dhry: exercises the coverage fast path.
        let dhry = kfi_workloads::mode_of("dhry").unwrap();
        b.iter(|| criterion::black_box(rig.run_one(&targets[0], dhry)))
    });
    g.finish();
}

criterion_group!(benches, bench_injection);
criterion_main!(benches);
