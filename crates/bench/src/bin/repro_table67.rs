//! Tables 6 and 7: case studies of (6) not-manifested random branch
//! errors and (7) representative crash causes, with before/after
//! disassembly of the corrupted instruction stream.

use kfi_injector::{plan_function, Campaign, Outcome};
use kfi_kernel::layout::{cause_name, causes};
use rand::SeedableRng;

fn main() {
    let opts = kfi_bench::ReproOptions::from_args();
    let exp = kfi_bench::prepare(&opts);
    let mut rig = exp.make_rig().expect("rig boots");
    let mut rng = rand::rngs::StdRng::seed_from_u64(opts.seed);

    // ---- Table 6: not-manifested branch flips ----
    println!("=== Table 6: Causes of Not Manifested Errors (Random Branch campaign) ===\n");
    let mut shown = 0;
    'outer: for f in &exp.target_functions {
        let targets = plan_function(&exp.image, f, Campaign::B, &mut rng);
        for t in &targets {
            let mode = exp.mode_for(t);
            let rec = rig.run_one(t, mode);
            if matches!(rec.outcome, Outcome::NotManifested) {
                if let Some(cs) =
                    kfi_dump::case_study(&exp.image, t.insn_addr, t.byte_index, t.bit_mask, 8)
                {
                    println!("--- not manifested in {} ---", t.function);
                    println!("{}", cs.format());
                    shown += 1;
                    if shown >= 3 {
                        break 'outer;
                    }
                }
            }
        }
    }

    // ---- Table 7: crash-cause case studies ----
    println!("\n=== Table 7: Example Case Studies of Crash Causes ===\n");
    let want = [causes::NULL_POINTER, causes::PAGING_REQUEST, causes::GPF, causes::INVALID_OP];
    let mut found: std::collections::BTreeMap<u32, bool> = Default::default();
    'outer2: for f in &exp.target_functions {
        for campaign in [Campaign::A, Campaign::C] {
            let targets = plan_function(&exp.image, f, campaign, &mut rng);
            for t in &targets {
                let mode = exp.mode_for(t);
                let rec = rig.run_one(t, mode);
                if let Outcome::Crash(info) = &rec.outcome {
                    if want.contains(&info.cause) && !found.contains_key(&info.cause) {
                        found.insert(info.cause, true);
                        println!(
                            "--- {} (campaign {}, injected in {}) ---",
                            cause_name(info.cause),
                            campaign.letter(),
                            t.function
                        );
                        if let Some(cs) = kfi_dump::case_study(
                            &exp.image,
                            t.insn_addr,
                            t.byte_index,
                            t.bit_mask,
                            12,
                        ) {
                            println!("{}", cs.format());
                        }
                        println!(
                            "crash at {:#010x} in {} ({}), latency {} cycles\n",
                            info.eip,
                            info.function.as_deref().unwrap_or("?"),
                            info.subsystem,
                            info.latency
                        );
                        if found.len() == want.len() {
                            break 'outer2;
                        }
                    }
                }
            }
        }
    }
    println!("(found {} of {} crash-cause examples)", found.len(), want.len());
}
