//! Table 5: the most severe crashes (reformat/reinstall required),
//! including the paper's repeatability column (each case is re-run once
//! with the identical target + workload; the machine is deterministic,
//! so repeatability here means the severity assessment itself is
//! stable).

use kfi_core::stats;
use kfi_injector::Outcome;

fn main() {
    let opts = kfi_bench::ReproOptions::from_args();
    let exp = kfi_bench::prepare(&opts);
    let study = kfi_bench::run_study(&exp);
    println!("{}", kfi_report::table5(&study));

    // Repeatability check (paper: 4 of the 9 cases were repeatable).
    let mut rig = exp.make_rig().expect("rig boots");
    println!("repeatability:");
    for result in study.campaigns.values() {
        for r in stats::most_severe_crashes(&result.records) {
            let again = rig.run_one(&r.target, r.mode);
            let repeat = match (&r.outcome, &again.outcome) {
                (Outcome::Crash(a), Outcome::Crash(b)) => a.severity == b.severity,
                _ => false,
            };
            println!(
                "  {}:{} insn {:#010x} -> repeatable: {}",
                r.target.subsystem,
                r.target.function,
                r.target.insn_addr,
                if repeat { "yes" } else { "no" }
            );
        }
    }
}
