//! Figure 5: case study of a most-severe / silent-data-corruption crash
//! in `do_generic_file_read` — the paper's catastrophic mov corruption
//! that zeroed `end_index` and truncated file reads.
//!
//! Strategy: inject campaign-A errors into `do_generic_file_read` while
//! `fstime` runs, and present the first injection whose outcome is a
//! fail-silence violation or a severe/most-severe crash, with the
//! before/after disassembly of the corrupted instruction.

use kfi_injector::{plan_function, Campaign, Outcome, Severity};
use rand::SeedableRng;

fn main() {
    let opts = kfi_bench::ReproOptions::from_args();
    let exp = kfi_bench::prepare(&opts);
    let mut rig = exp.make_rig().expect("rig boots");
    let mut rng = rand::rngs::StdRng::seed_from_u64(opts.seed);
    let targets = plan_function(&exp.image, "do_generic_file_read", Campaign::A, &mut rng);
    let mode = kfi_workloads::mode_of("fstime").expect("fstime exists");
    eprintln!("[kfi] sweeping {} injections into do_generic_file_read under fstime", targets.len());

    let mut best: Option<(kfi_injector::InjectionTarget, Outcome)> = None;
    for t in &targets {
        let rec = rig.run_one(t, mode);
        match &rec.outcome {
            Outcome::FailSilenceViolation(kind) => {
                println!("=== Figure 5 case study: silent corruption in do_generic_file_read ===");
                println!(
                    "injected: byte {} mask {:#04x} at {:#010x}",
                    t.byte_index, t.bit_mask, t.insn_addr
                );
                println!("outcome: fail silence violation: {kind:?}\n");
                if let Some(cs) =
                    kfi_dump::case_study(&exp.image, t.insn_addr, t.byte_index, t.bit_mask, 14)
                {
                    println!("{}", cs.format());
                }
                return;
            }
            Outcome::Crash(info) if info.severity > Severity::Normal => {
                best = Some((t.clone(), rec.outcome.clone()));
            }
            _ => {}
        }
    }
    match best {
        Some((t, outcome)) => {
            println!("=== Figure 5 case study: severe crash in do_generic_file_read ===");
            println!(
                "injected: byte {} mask {:#04x} at {:#010x}",
                t.byte_index, t.bit_mask, t.insn_addr
            );
            println!("outcome: {outcome:?}\n");
            if let Some(cs) =
                kfi_dump::case_study(&exp.image, t.insn_addr, t.byte_index, t.bit_mask, 14)
            {
                println!("{}", cs.format());
            }
        }
        None => println!("no severe/silent case found in this sweep; rerun with another --seed"),
    }
}
