//! Table 2: the experimental setup summary.

fn main() {
    println!("{}", kfi_report::table2());
}
