//! Regenerates every table and figure in one run and dumps the raw
//! dataset (run records, then per-campaign execution metrics) as CSV
//! on stdout when `--csv` is given.
//!
//! With `--matrix`, runs the campaign matrix (`kernel config ×
//! workload × target subsystem`, axes selectable with
//! `--matrix-kernels/--matrix-workloads/--matrix-subsystems`) instead:
//! stdout carries the matrix CSV when `--csv` is given, and `--check`
//! asserts the matrix invariants (non-empty cells, one record per
//! planned target, traffic workloads activating their subsystems) with
//! a nonzero exit on violation.
//!
//! With `--dist-workers N`, shards the campaigns over `N` worker
//! subprocesses (respawns of this binary with `--worker`) under
//! lease-based fault tolerance; `--chaos SEED` turns on the chaos
//! harness. Stdout stays byte-identical to the in-process run. With
//! `--worker`, speaks the framed lease protocol on stdin/stdout
//! instead of printing anything.

fn main() {
    let opts = kfi_bench::ReproOptions::from_args();
    let csv = std::env::args().any(|a| a == "--csv");
    if opts.worker {
        // Worker mode: stdout belongs to the wire protocol. All
        // human-facing output goes to stderr (the coordinator routes
        // it to /dev/null).
        let exp = kfi_bench::prepare(&opts);
        match kfi_core::run_worker(
            &exp,
            &opts.worker_config(),
            std::io::stdin().lock(),
            std::io::stdout(),
        ) {
            Ok(()) => return,
            Err(e) => {
                eprintln!("[kfi] worker failed: {e}");
                std::process::exit(2);
            }
        }
    }
    if opts.matrix {
        let m = kfi_bench::run_matrix(&opts);
        if opts.check {
            if let Err(e) = kfi_bench::check_matrix(&m) {
                eprintln!("[kfi] matrix check FAILED: {e}");
                std::process::exit(1);
            }
            eprintln!("[kfi] matrix check: all invariants hold");
        }
        if csv {
            print!("{}", kfi_core::matrix_to_csv(&m));
        }
        return;
    }
    let exp = kfi_bench::prepare(&opts);
    let (study, _report) = if opts.dist_workers.is_some() {
        let (study, report) = kfi_bench::run_study_dist(&exp, &opts);
        (study, Some(report))
    } else {
        let (study, _sup) = kfi_bench::run_study_supervised(&exp, &opts.supervisor_config());
        (study, None)
    };
    println!(
        "{}",
        kfi_report::full_report(&exp.image, &exp.profile, &study, exp.config.top_fraction)
    );
    if csv {
        print!("{}", kfi_bench::csv_dataset(&study));
    }
}
