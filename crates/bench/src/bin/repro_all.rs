//! Regenerates every table and figure in one run and dumps the raw
//! dataset (run records, then per-campaign execution metrics) as CSV
//! on stdout when `--csv` is given.

fn main() {
    let opts = kfi_bench::ReproOptions::from_args();
    let csv = std::env::args().any(|a| a == "--csv");
    let exp = kfi_bench::prepare(&opts);
    let study = kfi_bench::run_study(&exp);
    println!(
        "{}",
        kfi_report::full_report(&exp.image, &exp.profile, &study, exp.config.top_fraction)
    );
    if csv {
        let rows: Vec<kfi_core::RecordRow> = study
            .campaigns
            .values()
            .flat_map(|c| c.records.iter().map(kfi_core::RecordRow::from_record))
            .collect();
        println!("{}", kfi_core::to_csv(&rows));
        println!(
            "{}",
            kfi_core::metrics_to_csv(study.campaigns.iter().map(|(c, r)| (*c, &r.metrics)))
        );
    }
}
