//! Regenerates every table and figure in one run and dumps the raw
//! dataset (run records, then per-campaign execution metrics) as CSV
//! on stdout when `--csv` is given.

fn main() {
    let opts = kfi_bench::ReproOptions::from_args();
    let csv = std::env::args().any(|a| a == "--csv");
    let exp = kfi_bench::prepare(&opts);
    let (study, _report) = kfi_bench::run_study_supervised(&exp, &opts.supervisor_config());
    println!(
        "{}",
        kfi_report::full_report(&exp.image, &exp.profile, &study, exp.config.top_fraction)
    );
    if csv {
        print!("{}", kfi_bench::csv_dataset(&study));
    }
}
