//! Figure 6: distribution of crash causes per campaign.

fn main() {
    let opts = kfi_bench::ReproOptions::from_args();
    let exp = kfi_bench::prepare(&opts);
    let study = kfi_bench::run_study(&exp);
    println!("{}", kfi_report::figure6(&study));
}
