//! Figure 7: crash latency histograms (CPU cycles) per subsystem.

fn main() {
    let opts = kfi_bench::ReproOptions::from_args();
    let exp = kfi_bench::prepare(&opts);
    let study = kfi_bench::run_study(&exp);
    println!("{}", kfi_report::figure7(&study));
}
