//! Ablation: campaign C with and without the kernel's BUG() assertions.
//!
//! The paper attributes campaign C's invalid-opcode dominance (74.7% of
//! crashes) to in-kernel assertions compiling to `ud2a`. Removing the
//! assertions from the guest kernel must collapse that share — this
//! binary measures both builds.

use kfi_core::stats;
use kfi_injector::Campaign;
use kfi_kernel::layout::causes;

fn run(no_assertions: bool, opts: &kfi_bench::ReproOptions) -> (usize, f64) {
    let mut o = opts.clone();
    o.no_assertions = no_assertions;
    let exp = kfi_bench::prepare(&o);
    let result = exp.run_campaign(Campaign::C);
    let cc = stats::crash_causes(&result.records);
    let total: usize = cc.values().sum();
    let invop = cc.get(&causes::INVALID_OP).copied().unwrap_or(0);
    (total, 100.0 * invop as f64 / total.max(1) as f64)
}

fn main() {
    let opts = kfi_bench::ReproOptions::from_args();
    let (with_total, with_share) = run(false, &opts);
    let (wo_total, wo_share) = run(true, &opts);
    println!("Ablation: BUG() assertions vs campaign C crash causes");
    println!("  with assertions:    {with_total} crashes, invalid opcode {with_share:.1}%");
    println!("  without assertions: {wo_total} crashes, invalid opcode {wo_share:.1}%");
    if with_share > wo_share {
        println!("  -> assertions drive the invalid-opcode dominance, as the paper argues");
    } else {
        println!("  -> unexpected: shares did not drop; inspect the records");
    }
}
