//! Table 1: profiled-function distribution among kernel modules and the
//! top functions covering 95% of profiling values.

fn main() {
    let opts = kfi_bench::ReproOptions::from_args();
    let exp = kfi_bench::prepare(&opts);
    println!("{}", kfi_report::table1(&exp.profile, exp.config.top_fraction));
    println!("top functions:");
    for f in exp.profile.top_covering(exp.config.top_fraction) {
        println!("  {:<28} {:<8} {:>8} samples", f.name, f.subsystem, f.samples);
    }
}
