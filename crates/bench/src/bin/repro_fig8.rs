//! Figure 8: error-propagation graphs for fs and kernel.

fn main() {
    let opts = kfi_bench::ReproOptions::from_args();
    let exp = kfi_bench::prepare(&opts);
    let study = kfi_bench::run_study(&exp);
    println!("{}", kfi_report::figure8(&study));
}
