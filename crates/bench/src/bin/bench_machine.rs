//! Emits `BENCH_machine.json`: the machine-core performance baseline
//! (exec-loop MIPS with the decode cache off, on, and with the
//! basic-block engine on top; paged-guest kernel-replay MIPS with
//! block chaining off vs on; per-run snapshot restore cost full vs
//! dirty-tracked; and small-campaign wall clock at 1 and 4 worker
//! threads, both recompute-per-rig and with golden memoization +
//! copy-on-write rig forks).
//!
//! `--check` runs a scaled-down version of every measurement, prints
//! the JSON to stdout and writes nothing — the CI smoke mode. Without
//! it, the JSON lands in `BENCH_machine.json` in the current directory.

use kfi_core::{Experiment, ExperimentConfig};
use kfi_injector::Campaign;
use kfi_machine::{Machine, MachineConfig, Ramdisk, RunExit};
use kfi_profiler::ProfilerConfig;
use std::fmt::Write as _;
use std::time::Instant;

/// The bench workload: a register-ALU loop heavy on multi-byte
/// encodings (imm32 forms, modrm+sib+disp8), so per-fetch decode cost
/// is a realistic share of the interpreter's work.
fn alu_loop_machine(iters: u32, decode_cache: bool, block_engine: bool) -> Machine {
    let mut m = Machine::new(MachineConfig {
        timer_enabled: false,
        decode_cache,
        block_engine,
        ..Default::default()
    });
    let mut code = vec![0xb9]; // mov ecx, iters
    code.extend_from_slice(&iters.to_le_bytes());
    code.extend_from_slice(&[
        // loop:
        0x05, 0x78, 0x56, 0x34, 0x12, // add eax, 0x12345678
        0x8d, 0x54, 0x98, 0x44, // lea edx, [eax+ebx*4+0x44]
        0x35, 0x0f, 0x0f, 0x0f, 0x0f, // xor eax, 0x0f0f0f0f
        0x81, 0xc3, 0x01, 0x00, 0x00, 0x00, // add ebx, 1
        0x31, 0xd0, // xor eax, edx
        0x49, // dec ecx
        0x75, 0xe7, // jnz loop
        0xfa, 0xf4, // cli; hlt
    ]);
    m.mem.load(0x1000, &code);
    m.cpu.eip = 0x1000;
    m.cpu.set_reg(4, 0x8000);
    m
}

/// Interprets the ALU loop and returns (MIPS, instructions retired).
/// Best of `passes` — the loop is deterministic, so the fastest pass
/// is the one least disturbed by the host scheduler.
fn measure_mips(iters: u32, passes: u32, decode_cache: bool, block_engine: bool) -> (f64, u64) {
    let mut best = f64::MAX;
    let mut insns = 0;
    for _ in 0..passes {
        let mut m = alu_loop_machine(iters, decode_cache, block_engine);
        let t = Instant::now();
        assert_eq!(m.run(u64::MAX / 2), RunExit::Halted);
        let dt = t.elapsed().as_secs_f64();
        best = best.min(dt);
        insns = m.counters().instructions;
    }
    (insns as f64 / best / 1e6, insns)
}

/// Paged-guest replay: where campaigns actually spend their cycles.
/// Boots the real kernel image, snapshots at the paging-enabled entry
/// point, then replays the same boot-plus-workload instruction window
/// (a copy-on-write fork per pass, block engine on) with block chaining
/// off vs on. The two must retire the *same* instruction count — the
/// deadline semantics are bit-identical — so the MIPS ratio isolates
/// the dispatch + per-instruction-translation cost that chaining and
/// once-per-entry translation validation remove. Returns
/// `(mips_chain_off, mips_chain_on, instructions)`.
fn measure_paged(budget: u64, passes: u32) -> (f64, f64, u64) {
    let image = kfi_kernel::build_kernel(Default::default()).expect("kernel builds");
    let files = kfi_workloads::suite_files().expect("workloads build");
    let fsimg = kfi_kernel::mkfs(2048, &files);
    let disk = fsimg.disk.bytes().to_vec();
    let m = kfi_kernel::boot(&image, fsimg.disk, &Default::default());
    let snap = m.snapshot();
    let base_cfg = *m.config();

    let one_pass = |block_chain: bool| -> (f64, u64) {
        let mut f = Machine::fork(&snap, MachineConfig { block_chain, ..base_cfg });
        f.disk = Some(Ramdisk::fork_from(&disk, snap.id()));
        let t = Instant::now();
        let _ = f.run(budget);
        (t.elapsed().as_secs_f64(), f.counters().instructions)
    };
    // Passes alternate chain-off/chain-on so host-load drift hits both
    // sides equally instead of whichever side was measured second.
    let (mut best_off, mut best_on) = (f64::MAX, f64::MAX);
    let (mut insns_off, mut insns_on) = (0, 0);
    for _ in 0..passes {
        let (dt, n) = one_pass(false);
        best_off = best_off.min(dt);
        insns_off = n;
        let (dt, n) = one_pass(true);
        best_on = best_on.min(dt);
        insns_on = n;
    }
    assert_eq!(insns_off, insns_on, "chaining must not change the instruction count");
    (insns_off as f64 / best_off / 1e6, insns_on as f64 / best_on / 1e6, insns_on)
}

/// Measures per-restore cost in microseconds against a booted kernel
/// snapshot: `full` alternates two snapshots (every restore copies all
/// of physical memory), `dirty` reuses one snapshot with guest work in
/// between (every restore copies only the pages that work dirtied).
/// Returns (full_us, dirty_us, dirty_pages_per_run).
fn measure_restore(reps: u32) -> (f64, f64, u32) {
    let image = kfi_kernel::build_kernel(Default::default()).expect("kernel builds");
    let files = kfi_workloads::suite_files().expect("workloads build");
    let fsimg = kfi_kernel::mkfs(2048, &files);
    let m = kfi_kernel::boot(&image, fsimg.disk.clone(), &Default::default());
    let snap_a = m.snapshot();
    let snap_b = m.snapshot();

    let mut m = kfi_kernel::boot(&image, fsimg.disk, &Default::default());
    let t = Instant::now();
    for _ in 0..reps {
        m.restore(&snap_a);
        m.restore(&snap_b);
    }
    let full_us = t.elapsed().as_secs_f64() * 1e6 / (2 * reps) as f64;

    m.restore(&snap_a); // sync the dirty tracking to snap_a
    let mut dirty_time = 0.0;
    let mut dirty_pages = 0u64;
    for _ in 0..reps {
        let _ = m.run(50_000);
        dirty_pages += u64::from(m.dirty_page_count());
        let t = Instant::now();
        m.restore(&snap_a);
        dirty_time += t.elapsed().as_secs_f64();
    }
    (full_us, dirty_time * 1e6 / reps as f64, (dirty_pages / u64::from(reps)) as u32)
}

/// Wall-clock seconds for one campaign A at the given thread count,
/// best of `passes`.
///
/// `memoize = false` is the recompute-per-rig reference: every worker
/// boots and captures golden runs inside the timed region, every pass.
/// `memoize = true` measures the amortized steady state: the shared
/// base is booted and its golden runs captured once, *outside* the
/// timer (at million-run scale that one-off setup is noise), so the
/// timed region is fork + inject + classify only.
fn measure_campaign(exp: &Experiment, threads: usize, memoize: bool, passes: u32) -> f64 {
    let mut e = exp.with_threads(threads);
    e.config.memoize = memoize;
    if memoize {
        // One throwaway fork warms the base boot and all golden
        // captures for every pass that follows.
        drop(e.make_rig().expect("rig forks"));
    }
    let mut best = f64::MAX;
    for _ in 0..passes {
        let t = Instant::now();
        let r = e.run_campaign(Campaign::A);
        assert!(r.metrics.runs > 0);
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Best-of-`reps` per-rig setup cost: a full boot + golden capture
/// (what every worker paid before memoization) vs a copy-on-write fork
/// of the warm shared base (what every worker pays now).
fn measure_rig_setup(exp: &Experiment, reps: u32) -> (f64, f64) {
    let mut e = exp.with_threads(1);
    e.config.memoize = false;
    let mut boot_ms = f64::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        drop(e.make_rig().expect("rig boots"));
        boot_ms = boot_ms.min(t.elapsed().as_secs_f64() * 1e3);
    }
    e.config.memoize = true;
    drop(e.make_rig().expect("rig forks")); // boot the base + capture goldens
    let mut fork_ms = f64::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        drop(e.make_rig().expect("rig forks"));
        fork_ms = fork_ms.min(t.elapsed().as_secs_f64() * 1e3);
    }
    (boot_ms, fork_ms)
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let (loop_iters, passes, restore_reps, cap) =
        if check { (20_000, 3, 8, 1) } else { (500_000, 5, 64, 4) };

    eprintln!("[bench_machine] exec loop ({loop_iters} iterations)...");
    let (mips_off, insns) = measure_mips(loop_iters, passes, false, false);
    let (mips_on, insns_on) = measure_mips(loop_iters, passes, true, false);
    let (mips_block, insns_block) = measure_mips(loop_iters, passes, true, true);
    assert_eq!(insns, insns_on, "cache must not change the instruction count");
    assert_eq!(insns, insns_block, "block engine must not change the instruction count");
    let exec_speedup = mips_block / mips_off;

    let paged_budget: u64 = if check { 2_000_000 } else { 40_000_000 };
    // One paged pass is a single ~35 ms run — far more exposed to
    // scheduler noise than the long exec loop — so best-of needs more
    // samples to converge on the quiet-machine figure.
    let paged_passes = if check { 3 } else { 9 };
    eprintln!("[bench_machine] paged kernel replay (budget {paged_budget} cycles)...");
    let (mips_paged_off, mips_paged_on, paged_insns) = measure_paged(paged_budget, paged_passes);
    let paged_speedup = mips_paged_on / mips_paged_off;

    eprintln!("[bench_machine] snapshot restore ({restore_reps} reps)...");
    let (full_us, dirty_us, dirty_pages) = measure_restore(restore_reps);
    let restore_speedup = full_us / dirty_us;

    eprintln!("[bench_machine] campaign A wall clock (cap {cap})...");
    let exp = Experiment::prepare(ExperimentConfig {
        seed: 2003,
        max_per_function: Some(cap),
        threads: 1,
        profiler: ProfilerConfig { period: 501, budget: 200_000_000 },
        ..Default::default()
    })
    .expect("experiment prepares");
    let campaign_passes = if check { 1 } else { 2 };
    let wall_1 = measure_campaign(&exp, 1, false, campaign_passes);
    let wall_4 = measure_campaign(&exp, 4, false, campaign_passes);
    eprintln!("[bench_machine] campaign A wall clock, memoized (cap {cap})...");
    let memo_1 = measure_campaign(&exp, 1, true, campaign_passes);
    let memo_4 = measure_campaign(&exp, 4, true, campaign_passes);

    eprintln!("[bench_machine] per-rig setup: boot+goldens vs warm fork...");
    let (boot_ms, fork_ms) = measure_rig_setup(&exp, if check { 2 } else { 5 });
    let setup_speedup = boot_ms / fork_ms;

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"machine\",");
    let _ = writeln!(json, "  \"mode\": \"{}\",", if check { "check" } else { "full" });
    let _ = writeln!(json, "  \"exec_loop\": {{");
    let _ = writeln!(json, "    \"instructions\": {insns},");
    let _ = writeln!(json, "    \"mips_cache_off\": {mips_off:.1},");
    let _ = writeln!(json, "    \"mips_cache_on\": {mips_on:.1},");
    let _ = writeln!(json, "    \"mips_block_on\": {mips_block:.1},");
    let _ = writeln!(json, "    \"speedup_cache\": {:.2},", mips_on / mips_off);
    let _ = writeln!(json, "    \"speedup_block\": {:.2},", mips_block / mips_on);
    let _ = writeln!(json, "    \"speedup\": {exec_speedup:.2}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"exec_loop_paged\": {{");
    let _ = writeln!(json, "    \"instructions\": {paged_insns},");
    let _ = writeln!(json, "    \"mips_chain_off\": {mips_paged_off:.1},");
    let _ = writeln!(json, "    \"mips_chain_on\": {mips_paged_on:.1},");
    let _ = writeln!(json, "    \"speedup_chain\": {paged_speedup:.2}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"snapshot_restore\": {{");
    let _ = writeln!(json, "    \"phys_mem_bytes\": {},", 8 << 20);
    let _ = writeln!(json, "    \"full_restore_us\": {full_us:.1},");
    let _ = writeln!(json, "    \"dirty_restore_us\": {dirty_us:.1},");
    let _ = writeln!(json, "    \"dirty_pages_per_run\": {dirty_pages},");
    let _ = writeln!(json, "    \"speedup\": {restore_speedup:.2}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"campaign\": {{");
    let _ = writeln!(json, "    \"seed\": 2003,");
    let _ = writeln!(json, "    \"cap\": {cap},");
    let _ = writeln!(json, "    \"memoize\": false,");
    let _ = writeln!(json, "    \"wall_s_threads_1\": {wall_1:.2},");
    let _ = writeln!(json, "    \"wall_s_threads_4\": {wall_4:.2}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"campaign_memo\": {{");
    let _ = writeln!(json, "    \"seed\": 2003,");
    let _ = writeln!(json, "    \"cap\": {cap},");
    let _ = writeln!(json, "    \"memoize\": true,");
    let _ = writeln!(json, "    \"wall_s_threads_1\": {memo_1:.2},");
    let _ = writeln!(json, "    \"wall_s_threads_4\": {memo_4:.2},");
    let _ = writeln!(json, "    \"rig_setup_boot_ms\": {boot_ms:.2},");
    let _ = writeln!(json, "    \"rig_setup_fork_ms\": {fork_ms:.2},");
    let _ = writeln!(json, "    \"setup_speedup\": {setup_speedup:.2}");
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");

    if check {
        print!("{json}");
        eprintln!("[bench_machine] check ok (speedups: exec {exec_speedup:.2}x, restore {restore_speedup:.2}x)");
    } else {
        std::fs::write("BENCH_machine.json", &json).expect("write BENCH_machine.json");
        eprintln!("[bench_machine] wrote BENCH_machine.json (exec {exec_speedup:.2}x, restore {restore_speedup:.2}x)");
    }
}
