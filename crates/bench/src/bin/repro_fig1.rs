//! Figure 1: kernel subsystem sizes (no campaigns needed).

fn main() {
    let image = kfi_kernel::build_kernel(Default::default()).expect("kernel builds");
    println!("{}", kfi_report::figure1(&image));
}
