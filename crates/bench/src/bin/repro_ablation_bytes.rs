//! Encoding ablation: where in the instruction does the flipped bit
//! land? The paper's Table 7 attributes paging failures to corrupted
//! operands/registers and instruction-stream desynchronization — both
//! products of the *variable-length* encoding. Splitting campaign A by
//! byte position (opcode byte vs. operand bytes) makes that mechanism
//! measurable: operand-byte flips shift the crash mix toward paging
//! failures (corrupted displacements/registers and stream desync),
//! while opcode-byte flips shift it toward NULL-pointer faults (a
//! different-but-valid instruction consuming a pointerless register).

use kfi_core::stats;
use kfi_injector::{plan_function, Campaign, InjectionTarget, Outcome, RunRecord};
use kfi_kernel::layout::causes;
use rand::SeedableRng;

fn cause_share(records: &[RunRecord], cause: u32) -> f64 {
    let cc = stats::crash_causes(records);
    let total: usize = cc.values().sum();
    100.0 * cc.get(&cause).copied().unwrap_or(0) as f64 / total.max(1) as f64
}

fn main() {
    let opts = kfi_bench::ReproOptions::from_args();
    let exp = kfi_bench::prepare(&opts);
    let mut rig = exp.make_rig().expect("rig boots");
    let mut rng = rand::rngs::StdRng::seed_from_u64(opts.seed);

    let mut targets: Vec<InjectionTarget> = Vec::new();
    for f in &exp.target_functions {
        targets.extend(plan_function(&exp.image, f, Campaign::A, &mut rng));
    }
    let (mut opcode_recs, mut operand_recs) = (Vec::new(), Vec::new());
    for t in &targets {
        let mode = exp.mode_for(t);
        let rec = rig.run_one(t, mode);
        if matches!(rec.outcome, Outcome::Crash(_)) {
            if t.byte_index == 0 {
                opcode_recs.push(rec);
            } else {
                operand_recs.push(rec);
            }
        }
    }

    println!("Encoding ablation: crash-cause mix by corrupted byte position (campaign A)");
    println!(
        "  opcode-byte flips : {:>5} crashes | invalid opcode {:>5.1}% | paging {:>5.1}% | NULL {:>5.1}%",
        opcode_recs.len(),
        cause_share(&opcode_recs, causes::INVALID_OP),
        cause_share(&opcode_recs, causes::PAGING_REQUEST),
        cause_share(&opcode_recs, causes::NULL_POINTER),
    );
    println!(
        "  operand-byte flips: {:>5} crashes | invalid opcode {:>5.1}% | paging {:>5.1}% | NULL {:>5.1}%",
        operand_recs.len(),
        cause_share(&operand_recs, causes::INVALID_OP),
        cause_share(&operand_recs, causes::PAGING_REQUEST),
        cause_share(&operand_recs, causes::NULL_POINTER),
    );
    let paging_opc = cause_share(&opcode_recs, causes::PAGING_REQUEST);
    let paging_opr = cause_share(&operand_recs, causes::PAGING_REQUEST);
    if paging_opr > paging_opc {
        println!("  -> operand corruption drives paging failures (Table 7 ex. 2's mechanism)");
    }
}
