//! Replays one Table 7 crash case study with the `kfi-trace` ring sink
//! installed, printing the injected instruction's disassembly, the
//! trailing event timeline and the metrics of the traced run.

fn main() {
    let opts = kfi_bench::ReproOptions::from_args();
    let exp = kfi_bench::prepare(&opts);
    match kfi_bench::trace_case_study(&exp, opts.seed) {
        Some(text) => print!("{text}"),
        None => println!("no crash found under cap {:?}; try --full", opts.cap),
    }
}
