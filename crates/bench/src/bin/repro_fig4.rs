//! Figure 4 (plus the definitional Tables 3/4): outcome statistics per
//! campaign and subsystem.

fn main() {
    let opts = kfi_bench::ReproOptions::from_args();
    let exp = kfi_bench::prepare(&opts);
    let study = kfi_bench::run_study(&exp);
    println!("Table 3 outcome categories: activated / not manifested / fail silence violation / crash / hang");
    println!(
        "Table 4 campaigns: A random non-branch, B random branch, C valid-but-incorrect branch\n"
    );
    println!("{}", kfi_report::figure4(&study));
}
