//! Emits `BENCH_scaling.json`: the supervised-campaign host scaling
//! curve — wall-clock seconds for one memoized campaign A at 1, 2, 4
//! and 8 worker threads through the batched claim/report scheduler,
//! on the default uniprocessor guest and again on a `cpus = 2` SMP
//! guest — plus the cross-worker-count bit-identity assertion that
//! makes the curve safe to publish (every thread count must produce
//! byte-identical records and merged metrics, or the bench aborts).
//!
//! Honesty rule: `host_cpus` records what the measuring host actually
//! offered ([`std::thread::available_parallelism`]). On a single-CPU
//! host the expected curve is *flat or worse* — extra workers contend
//! for one core — and the JSON reports exactly that; the ratios are
//! measured, never synthesized. A curve worth citing for parallel
//! speedup must be re-measured on a multicore host (see
//! `EXPERIMENTS.md` for the methodology).
//!
//! `--check` runs a scaled-down version, prints the JSON to stdout and
//! writes nothing — the CI smoke mode. Without it, the JSON lands in
//! `BENCH_scaling.json` in the current directory.

use kfi_core::supervisor::{run_campaign_supervised, SupervisorConfig};
use kfi_core::{CampaignResult, Experiment, ExperimentConfig};
use kfi_injector::{Campaign, RigConfig};
use kfi_kernel::KernelBuildOptions;
use kfi_profiler::ProfilerConfig;
use std::fmt::Write as _;
use std::time::Instant;

const WORKERS: [usize; 4] = [1, 2, 4, 8];

/// Wall-clock seconds (best of `passes`) for one supervised campaign A
/// at `threads` workers, plus the result for the identity check.
fn measure(exp: &Experiment, threads: usize, passes: u32) -> (f64, CampaignResult) {
    let e = exp.with_threads(threads);
    let mut best = f64::MAX;
    let mut result = None;
    for _ in 0..passes {
        let t = Instant::now();
        let out = run_campaign_supervised(&e, Campaign::A, &SupervisorConfig::default())
            .expect("supervised campaign");
        best = best.min(t.elapsed().as_secs_f64());
        result = Some(out.result);
    }
    (best, result.expect("at least one pass"))
}

/// Sweeps the worker counts over one experiment, asserting that every
/// count reproduces the 1-worker dataset bit-for-bit.
fn sweep(exp: &Experiment, passes: u32, label: &str) -> Vec<f64> {
    let mut walls = Vec::with_capacity(WORKERS.len());
    let mut reference: Option<CampaignResult> = None;
    for &w in &WORKERS {
        eprintln!("[bench_scaling] {label}: {w} worker(s)...");
        let (wall, result) = measure(exp, w, passes);
        match &reference {
            None => reference = Some(result),
            Some(base) => {
                assert_eq!(result.records, base.records, "{label}: {w} workers diverged");
                assert_eq!(result.metrics, base.metrics, "{label}: {w}-worker metrics diverged");
            }
        }
        walls.push(wall);
    }
    walls
}

fn write_curve(json: &mut String, key: &str, cpus: u32, seed: u64, cap: usize, walls: &[f64]) {
    let _ = writeln!(json, "  \"{key}\": {{");
    let _ = writeln!(json, "    \"seed\": {seed},");
    let _ = writeln!(json, "    \"cap\": {cap},");
    let _ = writeln!(json, "    \"guest_cpus\": {cpus},");
    let workers: Vec<String> = WORKERS.iter().map(|w| w.to_string()).collect();
    let _ = writeln!(json, "    \"workers\": [{}],", workers.join(", "));
    let ws: Vec<String> = walls.iter().map(|w| format!("{w:.3}")).collect();
    let _ = writeln!(json, "    \"wall_s\": [{}],", ws.join(", "));
    let ratios: Vec<String> = walls.iter().map(|w| format!("{:.2}", walls[0] / w)).collect();
    let _ = writeln!(json, "    \"measured_speedup_vs_1_worker\": [{}],", ratios.join(", "));
    let _ = writeln!(json, "    \"records_bit_identical_across_workers\": true");
    let _ = writeln!(json, "  }},");
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let (cap, smp_cap, passes) = if check { (1, 1, 1) } else { (4, 2, 3) };
    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    eprintln!("[bench_scaling] host_cpus = {host_cpus}");
    eprintln!("[bench_scaling] uniprocessor-guest campaign A (cap {cap})...");
    let exp = Experiment::prepare(ExperimentConfig {
        seed: 2003,
        max_per_function: Some(cap),
        threads: 1,
        profiler: ProfilerConfig { period: 501, budget: 200_000_000 },
        ..Default::default()
    })
    .expect("experiment prepares");
    // Warm the shared base outside the timed region: one throwaway
    // fork boots and captures every golden run, so the sweep times
    // fork + inject + classify — the steady state a long campaign
    // actually lives in.
    drop(exp.make_rig().expect("rig forks"));
    let up_walls = sweep(&exp, passes, "cpus=1");

    eprintln!("[bench_scaling] smp-guest campaign A (cpus 2, cap {smp_cap})...");
    let exp_smp = Experiment::prepare(ExperimentConfig {
        seed: 2003,
        max_per_function: Some(smp_cap),
        threads: 1,
        kernel: KernelBuildOptions { smp: true, ..KernelBuildOptions::default() },
        rig: RigConfig { cpus: 2, ..RigConfig::default() },
        profiler: ProfilerConfig { period: 501, budget: 200_000_000 },
        ..Default::default()
    })
    .expect("smp experiment prepares");
    drop(exp_smp.make_rig().expect("smp rig forks"));
    let smp_walls = sweep(&exp_smp, passes, "cpus=2");

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"scaling\",");
    let _ = writeln!(json, "  \"mode\": \"{}\",", if check { "check" } else { "full" });
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(
        json,
        "  \"note\": \"measured speedups, never extrapolated: worker threads beyond host_cpus \
         share cores, so on a host_cpus={host_cpus} box a flat-or-declining curve is the honest \
         result; re-measure on a multicore host for a parallel-speedup figure\","
    );
    write_curve(&mut json, "supervised_campaign", 1, 2003, cap, &up_walls);
    write_curve(&mut json, "supervised_campaign_smp", 2, 2003, smp_cap, &smp_walls);
    // Trim the trailing comma of the last section.
    let trimmed = json.trim_end().trim_end_matches(',').to_string();
    let json = format!("{trimmed}\n}}\n");

    if check {
        print!("{json}");
        eprintln!("[bench_scaling] check ok (identity held at every worker count)");
    } else {
        std::fs::write("BENCH_scaling.json", &json).expect("write BENCH_scaling.json");
        eprintln!("[bench_scaling] wrote BENCH_scaling.json (identity held at every worker count)");
    }
}
