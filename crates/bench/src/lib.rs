//! # kfi-bench — benchmark harness and table/figure reproduction
//!
//! Criterion benches (decode/machine/injection throughput, ablations)
//! plus the `repro_*` binaries that regenerate every table and figure
//! of the paper. Shared scaffolding lives here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use kfi_core::supervisor::{PanicInjection, SupervisorConfig, SupervisorReport};
use kfi_core::{Experiment, ExperimentConfig, StudyResult};
use kfi_injector::{plan_function, Campaign, Outcome, RigConfig};
use kfi_kernel::KernelBuildOptions;
use kfi_profiler::ProfilerConfig;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::path::PathBuf;

/// Command-line options shared by the repro binaries.
#[derive(Debug, Clone)]
pub struct ReproOptions {
    /// Cap on injections per function per campaign (None = paper-scale:
    /// every byte of every instruction of every target function).
    pub cap: Option<usize>,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
    /// Build the kernel without BUG() assertions (ablation).
    pub no_assertions: bool,
    /// Guest CPUs per simulated machine (`--cpus N`, default 1 — the
    /// golden-corpus configuration). Values above 1 also switch the
    /// kernel build to the SMP variant
    /// ([`KernelBuildOptions::smp`]) so the extra CPUs are actually
    /// brought online; the guest interleaving stays a pure function of
    /// the machine's scheduler seed and quantum, never of host
    /// scheduling, so datasets remain bit-identical at any worker
    /// count.
    pub cpus: u32,
    /// Journal path for checkpoint/resume (`--journal`).
    pub journal: Option<PathBuf>,
    /// Resume from the journal instead of truncating it (`--resume`).
    pub resume: bool,
    /// Quarantine directory for persistent-offender artifacts
    /// (`--quarantine`).
    pub quarantine: Option<PathBuf>,
    /// Run the rig with the machine's architectural-state sanitizer on
    /// (`--sanitize`).
    pub sanitize: bool,
    /// Wall-clock watchdog budget per run in milliseconds
    /// (`--wall-budget-ms`).
    pub wall_budget_ms: Option<u64>,
    /// Test-only harness-fault injection (`--inject-panic`,
    /// `--inject-panic-persistent`).
    pub inject_panic: PanicInjection,
    /// Disable the shared-snapshot/golden-memoization fast path and
    /// fall back to booting + capturing goldens per rig (`--no-memo`).
    /// The dataset is bit-identical either way; the flag exists so CI
    /// can prove exactly that.
    pub no_memo: bool,
    /// Run the campaign matrix (`kernel × workload × subsystem`)
    /// instead of the paper's three campaigns (`--matrix`).
    pub matrix: bool,
    /// Matrix kernel axis as a comma list of `base`/`server`
    /// (`--matrix-kernels`); `None` = both.
    pub matrix_kernels: Option<String>,
    /// Matrix workload axis as a comma list of traffic workloads
    /// (`--matrix-workloads`); `None` = all four.
    pub matrix_workloads: Option<String>,
    /// Matrix subsystem axis as a comma list (`--matrix-subsystems`);
    /// `None` = `ipc,net`.
    pub matrix_subsystems: Option<String>,
    /// Assert the matrix invariants after the run and fail nonzero on
    /// violation (`--check`) — the CI smoke hook.
    pub check: bool,
    /// Shard the campaigns over this many worker subprocesses
    /// (`--dist-workers N`).
    pub dist_workers: Option<usize>,
    /// Chaos-harness seed: randomly SIGKILL/stall/crash workers
    /// mid-campaign (`--chaos SEED`; requires `--dist-workers`).
    pub chaos: Option<u64>,
    /// Run as a distributed worker: speak the framed lease protocol on
    /// stdin/stdout instead of printing a dataset (`--worker`).
    pub worker: bool,
    /// Test-only: as a worker, wedge before the handshake so the
    /// coordinator's boot timeout reaps us (`--worker-wedge-handshake`).
    pub worker_wedge_handshake: bool,
    /// Test-only: as a coordinator, ask the first spawned worker to
    /// wedge its handshake (`--wedge-first-handshake`).
    pub wedge_first_handshake: bool,
    /// Worker heartbeat interval in milliseconds (`--dist-hb-ms`).
    pub dist_hb_ms: u64,
    /// Coordinator silence budget before a lease expires, in
    /// milliseconds (`--dist-hb-budget-ms`).
    pub dist_hb_budget_ms: u64,
    /// Coordinator budget for a worker's boot + handshake, in
    /// milliseconds (`--dist-handshake-ms`).
    pub dist_handshake_ms: u64,
}

impl Default for ReproOptions {
    fn default() -> ReproOptions {
        ReproOptions {
            cap: Some(16),
            seed: 2003,
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            no_assertions: false,
            cpus: 1,
            journal: None,
            resume: false,
            quarantine: None,
            sanitize: false,
            wall_budget_ms: None,
            inject_panic: PanicInjection::None,
            no_memo: false,
            matrix: false,
            matrix_kernels: None,
            matrix_workloads: None,
            matrix_subsystems: None,
            check: false,
            dist_workers: None,
            chaos: None,
            worker: false,
            worker_wedge_handshake: false,
            wedge_first_handshake: false,
            dist_hb_ms: 100,
            dist_hb_budget_ms: 5_000,
            dist_handshake_ms: 180_000,
        }
    }
}

fn parse_index_list(s: &str) -> std::collections::BTreeSet<usize> {
    s.split(',').filter_map(|v| v.trim().parse().ok()).collect()
}

/// The `--help` text shared by the repro binaries (they differ only in
/// which outputs they print, not in which knobs they accept).
const USAGE: &str = "\
usage: repro_all [OPTIONS]

Regenerates the paper's tables and figures (campaigns A/B/C); --csv
additionally dumps the raw dataset (run records, then per-campaign
metrics) as CSV on stdout.

General:
  --full                paper-scale: every byte of every target instruction
  --cap N               injections per function per campaign (default 16)
  --seed N              campaign RNG seed (default 2003)
  --threads N           host worker threads (default: available parallelism)
  --cpus N              guest CPUs per simulated machine (default 1 — the
                        golden configuration; N>1 builds the SMP kernel so
                        the extra CPUs come online; the guest interleaving
                        is a pure function of the machine's scheduler seed
                        and quantum, never of host scheduling, so the
                        dataset stays bit-identical at any --threads)
  --no-assertions       build the kernel without BUG() assertions (ablation)
  --sanitize            per-step architectural-state sanitizer on the rig
  --no-memo             boot + capture goldens per rig instead of sharing
                        one snapshot (results bit-identical; CI proof knob)
  --csv                 dump the raw dataset as CSV on stdout

Supervisor:
  --journal PATH        checkpoint every run to PATH (in matrix mode PATH
                        is the per-cell journal directory)
  --resume              resume from --journal instead of truncating it
  --quarantine DIR      minimal-repro artifacts for persistent offenders
  --wall-budget-ms N    per-run wall-clock watchdog budget

Campaign matrix:
  --matrix              run kernel x workload x subsystem cells instead of
                        the paper's three campaigns
  --matrix-kernels L    comma list of base|server (default: both)
  --matrix-workloads L  comma list of traffic workloads (default: all four)
  --matrix-subsystems L comma list of subsystems (default: ipc,net)
  --check               assert the matrix invariants, nonzero exit on
                        violation (the CI smoke hook)

  Every cell plans with its own RNG seeded as
      cell_seed = seed ^ fnv1a(\"kernel/workload/subsystem\")
  (64-bit FNV-1a over the cell key). Cells are therefore independent of
  each other and of the grid shape: adding or removing axes never
  perturbs another cell's plan, and any one cell reproduces alone by
  narrowing --matrix-kernels/--matrix-workloads/--matrix-subsystems.

Distributed runner:
  --dist-workers N      shard campaigns over N worker subprocesses under
                        lease-based fault tolerance
  --chaos SEED          chaos harness: randomly kill/stall/crash workers
  --dist-hb-ms N        worker heartbeat interval (ms)
  --dist-hb-budget-ms N coordinator silence budget before lease expiry (ms)
  --dist-handshake-ms N coordinator budget for worker boot+handshake (ms)

Test-only: --inject-panic I,J,...  --inject-panic-persistent I,J,...
           --worker  --worker-wedge-handshake  --wedge-first-handshake
";

impl ReproOptions {
    /// Parses `--full`, `--cap N`, `--seed N`, `--threads N`,
    /// `--cpus N`, `--no-assertions`, `--journal PATH`, `--resume`,
    /// `--quarantine DIR`, `--sanitize`, `--wall-budget-ms N`,
    /// `--no-memo`, the matrix flags (`--matrix`,
    /// `--matrix-kernels LIST`, `--matrix-workloads LIST`,
    /// `--matrix-subsystems LIST`, `--check`), the distributed-runner
    /// flags (`--dist-workers N`, `--chaos SEED`, `--worker`,
    /// `--dist-hb-ms N`, `--dist-hb-budget-ms N`,
    /// `--dist-handshake-ms N`, plus the test-only
    /// `--worker-wedge-handshake` / `--wedge-first-handshake`) and the
    /// test-only `--inject-panic I,J,...` /
    /// `--inject-panic-persistent I,J,...` from the process arguments.
    /// `--help`/`-h` prints the usage text — including the per-cell
    /// matrix RNG derivation — and exits.
    pub fn from_args() -> ReproOptions {
        let mut o = ReproOptions::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--full" => o.cap = None,
                "--cap" => {
                    i += 1;
                    o.cap = args.get(i).and_then(|v| v.parse().ok());
                }
                "--seed" => {
                    i += 1;
                    o.seed = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(o.seed);
                }
                "--threads" => {
                    i += 1;
                    o.threads = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(o.threads);
                }
                "--no-assertions" => o.no_assertions = true,
                "--cpus" => {
                    i += 1;
                    o.cpus = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(o.cpus).max(1);
                }
                "--help" | "-h" => {
                    print!("{USAGE}");
                    std::process::exit(0);
                }
                "--journal" => {
                    i += 1;
                    o.journal = args.get(i).map(PathBuf::from);
                }
                "--resume" => o.resume = true,
                "--quarantine" => {
                    i += 1;
                    o.quarantine = args.get(i).map(PathBuf::from);
                }
                "--sanitize" => o.sanitize = true,
                "--no-memo" => o.no_memo = true,
                "--matrix" => o.matrix = true,
                "--matrix-kernels" => {
                    i += 1;
                    o.matrix_kernels = args.get(i).cloned();
                }
                "--matrix-workloads" => {
                    i += 1;
                    o.matrix_workloads = args.get(i).cloned();
                }
                "--matrix-subsystems" => {
                    i += 1;
                    o.matrix_subsystems = args.get(i).cloned();
                }
                "--check" => o.check = true,
                "--dist-workers" => {
                    i += 1;
                    o.dist_workers = args.get(i).and_then(|v| v.parse().ok());
                }
                "--chaos" => {
                    i += 1;
                    o.chaos = args.get(i).and_then(|v| v.parse().ok());
                }
                "--worker" => o.worker = true,
                "--worker-wedge-handshake" => o.worker_wedge_handshake = true,
                "--wedge-first-handshake" => o.wedge_first_handshake = true,
                "--dist-hb-ms" => {
                    i += 1;
                    o.dist_hb_ms = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(o.dist_hb_ms);
                }
                "--dist-hb-budget-ms" => {
                    i += 1;
                    o.dist_hb_budget_ms =
                        args.get(i).and_then(|v| v.parse().ok()).unwrap_or(o.dist_hb_budget_ms);
                }
                "--dist-handshake-ms" => {
                    i += 1;
                    o.dist_handshake_ms =
                        args.get(i).and_then(|v| v.parse().ok()).unwrap_or(o.dist_handshake_ms);
                }
                "--wall-budget-ms" => {
                    i += 1;
                    o.wall_budget_ms = args.get(i).and_then(|v| v.parse().ok());
                }
                "--inject-panic" => {
                    i += 1;
                    if let Some(list) = args.get(i) {
                        o.inject_panic = PanicInjection::Transient(parse_index_list(list));
                    }
                }
                "--inject-panic-persistent" => {
                    i += 1;
                    if let Some(list) = args.get(i) {
                        o.inject_panic = PanicInjection::Persistent(parse_index_list(list));
                    }
                }
                "--csv" => {} // handled by the binaries themselves
                other => eprintln!("ignoring unknown argument `{other}`"),
            }
            i += 1;
        }
        o
    }

    /// Converts to an experiment configuration.
    pub fn to_config(&self) -> ExperimentConfig {
        ExperimentConfig {
            seed: self.seed,
            max_per_function: self.cap,
            threads: self.threads,
            kernel: KernelBuildOptions {
                assertions: !self.no_assertions,
                smp: self.cpus > 1,
                ..Default::default()
            },
            profiler: ProfilerConfig::default(),
            rig: RigConfig { sanitizer: self.sanitize, cpus: self.cpus, ..RigConfig::default() },
            memoize: !self.no_memo,
            ..Default::default()
        }
    }

    /// Converts to a campaign-matrix configuration. `--journal PATH` is
    /// reused as the per-cell journal *directory* in matrix mode.
    ///
    /// # Panics
    ///
    /// Panics on an unknown `--matrix-kernels` name (only `base` and
    /// `server` kernels exist).
    pub fn matrix_config(&self) -> kfi_core::MatrixConfig {
        let list = |s: &Option<String>| -> Option<Vec<String>> {
            s.as_ref().map(|v| {
                v.split(',').map(|w| w.trim().to_string()).filter(|w| !w.is_empty()).collect()
            })
        };
        let defaults = kfi_core::MatrixConfig::default();
        let kernel_names = list(&self.matrix_kernels)
            .unwrap_or_else(|| defaults.kernels.iter().map(|(n, _)| n.clone()).collect());
        let kernels = kernel_names
            .into_iter()
            .map(|n| {
                let opts = match n.as_str() {
                    "base" => KernelBuildOptions {
                        assertions: !self.no_assertions,
                        smp: self.cpus > 1,
                        ..Default::default()
                    },
                    "server" => KernelBuildOptions {
                        assertions: !self.no_assertions,
                        server: true,
                        smp: self.cpus > 1,
                        ..Default::default()
                    },
                    other => panic!("unknown matrix kernel `{other}` (expected base|server)"),
                };
                (n, opts)
            })
            .collect();
        kfi_core::MatrixConfig {
            kernels,
            workloads: list(&self.matrix_workloads).unwrap_or(defaults.workloads),
            subsystems: list(&self.matrix_subsystems).unwrap_or(defaults.subsystems),
            seed: self.seed,
            threads: self.threads,
            max_per_function: self.cap,
            max_per_cell: None,
            profiler: ProfilerConfig::default(),
            rig: RigConfig { sanitizer: self.sanitize, cpus: self.cpus, ..RigConfig::default() },
            suite: kfi_workloads::Suite::Traffic,
            journal_dir: self.journal.clone(),
            resume: self.resume,
        }
    }

    /// The argument vector that turns this binary into a worker with
    /// the same plan-determining configuration (seed, cap, kernel and
    /// rig flags) as the coordinator. Scheduling-only flags (threads,
    /// journal, dist pool shape) deliberately do not propagate: the
    /// worker runs single-threaded and only the coordinator journals.
    pub fn to_worker_args(&self) -> Vec<String> {
        let mut a: Vec<String> =
            ["--worker", "--threads", "1"].iter().map(|s| s.to_string()).collect();
        a.push("--seed".into());
        a.push(self.seed.to_string());
        match self.cap {
            Some(cap) => {
                a.push("--cap".into());
                a.push(cap.to_string());
            }
            None => a.push("--full".into()),
        }
        if self.no_assertions {
            a.push("--no-assertions".into());
        }
        if self.cpus != 1 {
            a.push("--cpus".into());
            a.push(self.cpus.to_string());
        }
        if self.sanitize {
            a.push("--sanitize".into());
        }
        if self.no_memo {
            a.push("--no-memo".into());
        }
        if let Some(ms) = self.wall_budget_ms {
            a.push("--wall-budget-ms".into());
            a.push(ms.to_string());
        }
        a.push("--dist-hb-ms".into());
        a.push(self.dist_hb_ms.to_string());
        a
    }

    /// Converts to a distributed-coordinator policy, spawning workers
    /// from `worker_exe` (normally [`std::env::current_exe`]; tests
    /// pass the `repro_all` binary path explicitly).
    pub fn dist_config(&self, worker_exe: PathBuf) -> kfi_core::DistConfig {
        let mut cfg = kfi_core::DistConfig::new(
            self.dist_workers.unwrap_or(1),
            worker_exe,
            self.to_worker_args(),
        );
        cfg.chaos = self.chaos;
        cfg.handshake_budget = std::time::Duration::from_millis(self.dist_handshake_ms);
        cfg.heartbeat_budget = std::time::Duration::from_millis(self.dist_hb_budget_ms);
        cfg.journal = self.journal.clone();
        cfg.resume = self.resume;
        cfg.wedge_first_handshake = self.wedge_first_handshake;
        cfg
    }

    /// Converts to a worker policy. The journal fields never propagate
    /// to workers: only the coordinator journals.
    pub fn worker_config(&self) -> kfi_core::WorkerConfig {
        kfi_core::WorkerConfig {
            heartbeat_interval: std::time::Duration::from_millis(self.dist_hb_ms.max(1)),
            supervisor: SupervisorConfig {
                wall_budget: self.wall_budget_ms.map(std::time::Duration::from_millis),
                ..SupervisorConfig::default()
            },
            wedge_handshake: self.worker_wedge_handshake,
        }
    }

    /// Converts to a supervisor policy.
    pub fn supervisor_config(&self) -> SupervisorConfig {
        SupervisorConfig {
            wall_budget: self.wall_budget_ms.map(std::time::Duration::from_millis),
            quarantine_dir: self.quarantine.clone(),
            journal: self.journal.clone(),
            resume: self.resume,
            inject_panic: self.inject_panic.clone(),
            ..SupervisorConfig::default()
        }
    }
}

/// Prepares the experiment (kernel build + profile), printing progress.
///
/// # Panics
///
/// Panics when the guest sources fail to assemble or the baseline
/// system is unhealthy — nothing can be measured in that case.
pub fn prepare(opts: &ReproOptions) -> Experiment {
    eprintln!(
        "[kfi] building kernel (assertions: {}) and profiling workloads...",
        !opts.no_assertions
    );
    let exp = Experiment::prepare(opts.to_config()).expect("experiment prepares");
    eprintln!(
        "[kfi] profiled {} functions, {} targets cover 95% of activity",
        exp.profile.functions.len(),
        exp.target_functions.len()
    );
    exp
}

/// How many trailing events the trace replay keeps (the interesting
/// part of a crash timeline is its tail: trigger, flip, fault cascade,
/// classification).
pub const TRACE_RING_CAPACITY: usize = 256;

/// Replays one Table 7 case study with tracing enabled.
///
/// Scans campaign A's planned targets in fixed order (tracing off,
/// same cap as the experiment config) until a run crashes, then
/// re-runs that exact injection with a ring sink installed and renders
/// the corrupted-instruction disassembly, the trailing event timeline
/// and the metrics of the traced run. Fully deterministic for a given
/// experiment + seed, which the golden transcript test pins down.
///
/// Returns `None` when no scanned target crashes (raise the cap).
///
/// # Panics
///
/// Panics when the rig cannot boot the baseline system.
pub fn trace_case_study(exp: &Experiment, seed: u64) -> Option<String> {
    let mut rig = exp.make_rig().expect("rig boots");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    for f in &exp.target_functions {
        let mut targets = plan_function(&exp.image, f, Campaign::A, &mut rng);
        if let Some(cap) = exp.config.max_per_function {
            targets.truncate(cap);
        }
        for t in &targets {
            let mode = exp.mode_for(t);
            let rec = rig.run_one(t, mode);
            let Outcome::Crash(_) = rec.outcome else { continue };

            // Replay the same injection with the ring sink installed.
            rig.enable_tracing(TRACE_RING_CAPACITY);
            let _ = rig.take_metrics();
            let traced = rig.run_one(t, mode);
            let events = rig.take_events();
            let metrics = rig.take_metrics();
            rig.disable_tracing();

            let mut s = String::new();
            let _ = writeln!(
                s,
                "=== Trace replay: {} ({}), insn {:#010x} byte {} mask {:#04x}, mode {mode} ===",
                t.function, t.subsystem, t.insn_addr, t.byte_index, t.bit_mask
            );
            if let Some(cs) =
                kfi_dump::case_study(&exp.image, t.insn_addr, t.byte_index, t.bit_mask, 8)
            {
                s.push_str(&cs.format());
                s.push('\n');
            }
            if let Outcome::Crash(info) = &traced.outcome {
                let _ = writeln!(
                    s,
                    "outcome: crash at {:#010x} in {} ({}), latency {} cycles\n",
                    info.eip,
                    info.function.as_deref().unwrap_or("?"),
                    info.subsystem,
                    info.latency
                );
            }
            let _ = writeln!(s, "--- last {} events ---", events.len());
            s.push_str(&kfi_report::trace_timeline(&events));
            s.push('\n');
            s.push_str(&kfi_report::metrics_table(&metrics));
            return Some(s);
        }
    }
    None
}

/// Renders a study's raw dataset as CSV: every run record, then the
/// per-campaign execution metrics — exactly what `repro_all --csv`
/// prints. Shared with the golden-corpus test so the pinned file and
/// the tool output cannot drift apart.
pub fn csv_dataset(study: &StudyResult) -> String {
    let rows: Vec<kfi_core::RecordRow> = study
        .campaigns
        .values()
        .flat_map(|c| c.records.iter().map(kfi_core::RecordRow::from_record))
        .collect();
    format!(
        "{}\n{}\n",
        kfi_core::to_csv(&rows),
        kfi_core::metrics_to_csv(study.campaigns.iter().map(|(c, r)| (*c, &r.metrics)))
    )
}

/// Runs the campaign matrix, printing per-cell progress on stderr.
///
/// # Panics
///
/// Panics when a kernel variant fails to build, a workload does not
/// resolve in the traffic suite, or a cell journal is unusable.
pub fn run_matrix(opts: &ReproOptions) -> kfi_core::MatrixResult {
    let cfg = opts.matrix_config();
    eprintln!(
        "[kfi] matrix: {} kernels x {} workloads x {} subsystems (cap {:?}, {} threads)...",
        cfg.kernels.len(),
        cfg.workloads.len(),
        cfg.subsystems.len(),
        cfg.max_per_function,
        cfg.threads
    );
    let m = kfi_core::run_matrix(&cfg).expect("matrix runs");
    for c in &m.cells {
        let t = c.result.total();
        eprintln!(
            "[kfi] cell {}: {} runs, {} activated, {} crash/hang{}",
            c.cell.key(),
            c.result.metrics.runs,
            t.activated,
            t.crash_or_hang(),
            if c.report.resumed_runs > 0 {
                format!(" ({} resumed)", c.report.resumed_runs)
            } else {
                String::new()
            }
        );
    }
    m
}

/// The `--check` invariants for a matrix dataset:
///
/// * the grid is non-empty and every cell planned at least one
///   injection (an empty cell means the subsystem tag or workload
///   wiring broke);
/// * every cell's merged metrics count exactly its plan size — one
///   record per planned target, nothing dropped or duplicated;
/// * the traffic workloads actually drive the handlers they exist to
///   drive: any `server` cell pairing `echo` with `ipc` or `netstorm`
///   with `net` must contain an activated injection.
///
/// # Errors
///
/// A description of the first violated invariant. Every cell-scoped
/// error carries the cell's RNG derivation — `seed ^ fnv1a(cell_key)`
/// — so the failing cell can be reproduced in isolation by narrowing
/// the axis flags without re-running the rest of the grid.
pub fn check_matrix(m: &kfi_core::MatrixResult) -> Result<(), String> {
    // The failing cell's plan depends only on its own derived seed, so
    // the repro recipe is exact regardless of which axes the original
    // grid swept.
    let hint = |key: &str| {
        format!(
            "(cell RNG seed = matrix seed ^ fnv1a(\"{key}\"); reproduce this cell alone \
             with --matrix --matrix-kernels/--matrix-workloads/--matrix-subsystems \
             narrowed to it)"
        )
    };
    if m.cells.is_empty() {
        return Err("matrix has no cells".into());
    }
    for c in &m.cells {
        let key = c.cell.key();
        if c.result.records.is_empty() {
            return Err(format!("cell {key} planned no injections {}", hint(&key)));
        }
        if c.result.metrics.runs != c.result.records.len() as u64 {
            return Err(format!(
                "cell {key}: {} metrics runs != {} records {}",
                c.result.metrics.runs,
                c.result.records.len(),
                hint(&key)
            ));
        }
    }
    for (w, s) in [("echo", "ipc"), ("netstorm", "net")] {
        for c in &m.cells {
            if c.cell.kernel != "server" || c.cell.workload != w || c.cell.subsystem != s {
                continue;
            }
            if !c.result.records.iter().any(|r| r.outcome != Outcome::NotActivated) {
                let key = c.cell.key();
                return Err(format!(
                    "cell {key}: no activated injection — {w} is not driving {s} {}",
                    hint(&key)
                ));
            }
        }
    }
    Ok(())
}

/// Runs all three campaigns over a pool of worker subprocesses,
/// printing progress and a machine-greppable coordinator summary on
/// stderr. The stdout dataset is byte-identical to the in-process
/// supervisor run of the same plan — at any worker count and under any
/// chaos schedule.
///
/// # Panics
///
/// Panics when the journal cannot be opened or its seed does not match.
pub fn run_study_dist(
    exp: &Experiment,
    opts: &ReproOptions,
) -> (StudyResult, kfi_core::DistReport) {
    let exe = std::env::current_exe().expect("current exe resolves");
    let cfg = opts.dist_config(exe);
    eprintln!(
        "[kfi] dist: campaigns A/B/C over {} functions across {} workers{}...",
        exp.target_functions.len(),
        cfg.workers,
        cfg.chaos.map(|s| format!(" (chaos seed {s})")).unwrap_or_default()
    );
    let dist = kfi_core::run_study_dist(exp, &cfg).expect("journal usable");
    let study = dist.study;
    for (l, r) in &study.campaigns {
        let t = r.total();
        eprintln!(
            "[kfi] campaign {l}: {} injected, {} activated, {} crash/hang",
            t.injected,
            t.activated,
            t.crash_or_hang()
        );
    }
    let rep = &dist.report;
    eprintln!(
        "[kfi] dist: spawned={} respawned={} quarantined={} handshake_timeouts={} \
         leases_expired={} requeued={} degraded={} chaos_kills={} chaos_stalls={} \
         chaos_exits={} wire_bytes={}",
        rep.workers_spawned,
        rep.workers_respawned,
        rep.workers_quarantined,
        rep.handshake_timeouts,
        rep.leases_expired,
        rep.jobs_requeued,
        rep.jobs_degraded,
        rep.chaos_kills,
        rep.chaos_stalls,
        rep.chaos_exits,
        rep.wire_bytes_streamed
    );
    if cfg.journal.is_some() {
        eprintln!(
            "[kfi] journal: {} runs resumed, {} fsync batches",
            rep.resumed_runs, rep.journal_flushes
        );
    }
    (study, dist.report)
}

/// Runs all three campaigns, printing progress.
pub fn run_study(exp: &Experiment) -> StudyResult {
    run_study_supervised(exp, &SupervisorConfig::default()).0
}

/// Runs all three campaigns under the given supervisor policy,
/// printing progress and the supervisor summary on stderr. The stdout
/// dataset is unaffected by the policy: a resumed campaign prints
/// byte-identical results to an uninterrupted one.
///
/// # Panics
///
/// Panics when the journal cannot be opened or its seed does not match
/// — continuing would silently discard the requested checkpoints.
pub fn run_study_supervised(
    exp: &Experiment,
    cfg: &SupervisorConfig,
) -> (StudyResult, SupervisorReport) {
    eprintln!(
        "[kfi] running campaigns A/B/C over {} functions (cap {:?}, {} threads)...",
        exp.target_functions.len(),
        exp.config.max_per_function,
        exp.config.threads
    );
    let supervised = kfi_core::run_study_supervised(exp, cfg).expect("journal usable");
    let study = supervised.study;
    for (l, r) in &study.campaigns {
        let t = r.total();
        eprintln!(
            "[kfi] campaign {l}: {} injected, {} activated, {} crash/hang",
            t.injected,
            t.activated,
            t.crash_or_hang()
        );
    }
    let rep = &supervised.report;
    if cfg.journal.is_some() {
        eprintln!(
            "[kfi] journal: {} runs resumed, {} fsync batches",
            rep.resumed_runs, rep.journal_flushes
        );
    }
    if rep.rig_panics + rep.retries + rep.quarantined_runs + rep.watchdog_fired > 0
        || rep.workers_lost > 0
    {
        eprintln!(
            "[kfi] supervisor: {} panics caught, {} retries, {} quarantined, \
             {} watchdog aborts, {} workers lost",
            rep.rig_panics, rep.retries, rep.quarantined_runs, rep.watchdog_fired, rep.workers_lost
        );
    }
    for q in &rep.quarantined {
        eprintln!(
            "[kfi] quarantined: campaign {} job {} ({}) — {}{}",
            q.campaign,
            q.index,
            q.function,
            q.reason,
            q.path.as_deref().map(|p| format!(" [{}]", p.display())).unwrap_or_default()
        );
    }
    (study, supervised.report)
}
