//! # kfi-bench — benchmark harness and table/figure reproduction
//!
//! Criterion benches (decode/machine/injection throughput, ablations)
//! plus the `repro_*` binaries that regenerate every table and figure
//! of the paper. Shared scaffolding lives here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use kfi_core::{Experiment, ExperimentConfig, StudyResult};
use kfi_injector::{plan_function, Campaign, Outcome};
use kfi_kernel::KernelBuildOptions;
use kfi_profiler::ProfilerConfig;
use rand::SeedableRng;
use std::fmt::Write as _;

/// Command-line options shared by the repro binaries.
#[derive(Debug, Clone)]
pub struct ReproOptions {
    /// Cap on injections per function per campaign (None = paper-scale:
    /// every byte of every instruction of every target function).
    pub cap: Option<usize>,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
    /// Build the kernel without BUG() assertions (ablation).
    pub no_assertions: bool,
}

impl Default for ReproOptions {
    fn default() -> ReproOptions {
        ReproOptions {
            cap: Some(16),
            seed: 2003,
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            no_assertions: false,
        }
    }
}

impl ReproOptions {
    /// Parses `--full`, `--cap N`, `--seed N`, `--threads N`,
    /// `--no-assertions` from the process arguments.
    pub fn from_args() -> ReproOptions {
        let mut o = ReproOptions::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--full" => o.cap = None,
                "--cap" => {
                    i += 1;
                    o.cap = args.get(i).and_then(|v| v.parse().ok());
                }
                "--seed" => {
                    i += 1;
                    o.seed = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(o.seed);
                }
                "--threads" => {
                    i += 1;
                    o.threads = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(o.threads);
                }
                "--no-assertions" => o.no_assertions = true,
                other => eprintln!("ignoring unknown argument `{other}`"),
            }
            i += 1;
        }
        o
    }

    /// Converts to an experiment configuration.
    pub fn to_config(&self) -> ExperimentConfig {
        ExperimentConfig {
            seed: self.seed,
            max_per_function: self.cap,
            threads: self.threads,
            kernel: KernelBuildOptions { assertions: !self.no_assertions },
            profiler: ProfilerConfig::default(),
            ..Default::default()
        }
    }
}

/// Prepares the experiment (kernel build + profile), printing progress.
///
/// # Panics
///
/// Panics when the guest sources fail to assemble or the baseline
/// system is unhealthy — nothing can be measured in that case.
pub fn prepare(opts: &ReproOptions) -> Experiment {
    eprintln!(
        "[kfi] building kernel (assertions: {}) and profiling workloads...",
        !opts.no_assertions
    );
    let exp = Experiment::prepare(opts.to_config()).expect("experiment prepares");
    eprintln!(
        "[kfi] profiled {} functions, {} targets cover 95% of activity",
        exp.profile.functions.len(),
        exp.target_functions.len()
    );
    exp
}

/// How many trailing events the trace replay keeps (the interesting
/// part of a crash timeline is its tail: trigger, flip, fault cascade,
/// classification).
pub const TRACE_RING_CAPACITY: usize = 256;

/// Replays one Table 7 case study with tracing enabled.
///
/// Scans campaign A's planned targets in fixed order (tracing off,
/// same cap as the experiment config) until a run crashes, then
/// re-runs that exact injection with a ring sink installed and renders
/// the corrupted-instruction disassembly, the trailing event timeline
/// and the metrics of the traced run. Fully deterministic for a given
/// experiment + seed, which the golden transcript test pins down.
///
/// Returns `None` when no scanned target crashes (raise the cap).
///
/// # Panics
///
/// Panics when the rig cannot boot the baseline system.
pub fn trace_case_study(exp: &Experiment, seed: u64) -> Option<String> {
    let mut rig = exp.make_rig().expect("rig boots");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    for f in &exp.target_functions {
        let mut targets = plan_function(&exp.image, f, Campaign::A, &mut rng);
        if let Some(cap) = exp.config.max_per_function {
            targets.truncate(cap);
        }
        for t in &targets {
            let mode = exp.mode_for(t);
            let rec = rig.run_one(t, mode);
            let Outcome::Crash(_) = rec.outcome else { continue };

            // Replay the same injection with the ring sink installed.
            rig.enable_tracing(TRACE_RING_CAPACITY);
            let _ = rig.take_metrics();
            let traced = rig.run_one(t, mode);
            let events = rig.take_events();
            let metrics = rig.take_metrics();
            rig.disable_tracing();

            let mut s = String::new();
            let _ = writeln!(
                s,
                "=== Trace replay: {} ({}), insn {:#010x} byte {} mask {:#04x}, mode {mode} ===",
                t.function, t.subsystem, t.insn_addr, t.byte_index, t.bit_mask
            );
            if let Some(cs) =
                kfi_dump::case_study(&exp.image, t.insn_addr, t.byte_index, t.bit_mask, 8)
            {
                s.push_str(&cs.format());
                s.push('\n');
            }
            if let Outcome::Crash(info) = &traced.outcome {
                let _ = writeln!(
                    s,
                    "outcome: crash at {:#010x} in {} ({}), latency {} cycles\n",
                    info.eip,
                    info.function.as_deref().unwrap_or("?"),
                    info.subsystem,
                    info.latency
                );
            }
            let _ = writeln!(s, "--- last {} events ---", events.len());
            s.push_str(&kfi_report::trace_timeline(&events));
            s.push('\n');
            s.push_str(&kfi_report::metrics_table(&metrics));
            return Some(s);
        }
    }
    None
}

/// Renders a study's raw dataset as CSV: every run record, then the
/// per-campaign execution metrics — exactly what `repro_all --csv`
/// prints. Shared with the golden-corpus test so the pinned file and
/// the tool output cannot drift apart.
pub fn csv_dataset(study: &StudyResult) -> String {
    let rows: Vec<kfi_core::RecordRow> = study
        .campaigns
        .values()
        .flat_map(|c| c.records.iter().map(kfi_core::RecordRow::from_record))
        .collect();
    format!(
        "{}\n{}\n",
        kfi_core::to_csv(&rows),
        kfi_core::metrics_to_csv(study.campaigns.iter().map(|(c, r)| (*c, &r.metrics)))
    )
}

/// Runs all three campaigns, printing progress.
pub fn run_study(exp: &Experiment) -> StudyResult {
    eprintln!(
        "[kfi] running campaigns A/B/C over {} functions (cap {:?}, {} threads)...",
        exp.target_functions.len(),
        exp.config.max_per_function,
        exp.config.threads
    );
    let study = exp.run_all();
    for (l, r) in &study.campaigns {
        let t = r.total();
        eprintln!(
            "[kfi] campaign {l}: {} injected, {} activated, {} crash/hang",
            t.injected,
            t.activated,
            t.crash_or_hang()
        );
    }
    study
}
