//! # kfi-bench — benchmark harness and table/figure reproduction
//!
//! Criterion benches (decode/machine/injection throughput, ablations)
//! plus the `repro_*` binaries that regenerate every table and figure
//! of the paper. Shared scaffolding lives here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use kfi_core::{Experiment, ExperimentConfig, StudyResult};
use kfi_kernel::KernelBuildOptions;
use kfi_profiler::ProfilerConfig;

/// Command-line options shared by the repro binaries.
#[derive(Debug, Clone)]
pub struct ReproOptions {
    /// Cap on injections per function per campaign (None = paper-scale:
    /// every byte of every instruction of every target function).
    pub cap: Option<usize>,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
    /// Build the kernel without BUG() assertions (ablation).
    pub no_assertions: bool,
}

impl Default for ReproOptions {
    fn default() -> ReproOptions {
        ReproOptions {
            cap: Some(16),
            seed: 2003,
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            no_assertions: false,
        }
    }
}

impl ReproOptions {
    /// Parses `--full`, `--cap N`, `--seed N`, `--threads N`,
    /// `--no-assertions` from the process arguments.
    pub fn from_args() -> ReproOptions {
        let mut o = ReproOptions::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--full" => o.cap = None,
                "--cap" => {
                    i += 1;
                    o.cap = args.get(i).and_then(|v| v.parse().ok());
                }
                "--seed" => {
                    i += 1;
                    o.seed = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(o.seed);
                }
                "--threads" => {
                    i += 1;
                    o.threads = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(o.threads);
                }
                "--no-assertions" => o.no_assertions = true,
                other => eprintln!("ignoring unknown argument `{other}`"),
            }
            i += 1;
        }
        o
    }

    /// Converts to an experiment configuration.
    pub fn to_config(&self) -> ExperimentConfig {
        ExperimentConfig {
            seed: self.seed,
            max_per_function: self.cap,
            threads: self.threads,
            kernel: KernelBuildOptions { assertions: !self.no_assertions },
            profiler: ProfilerConfig::default(),
            ..Default::default()
        }
    }
}

/// Prepares the experiment (kernel build + profile), printing progress.
///
/// # Panics
///
/// Panics when the guest sources fail to assemble or the baseline
/// system is unhealthy — nothing can be measured in that case.
pub fn prepare(opts: &ReproOptions) -> Experiment {
    eprintln!(
        "[kfi] building kernel (assertions: {}) and profiling workloads...",
        !opts.no_assertions
    );
    let exp = Experiment::prepare(opts.to_config()).expect("experiment prepares");
    eprintln!(
        "[kfi] profiled {} functions, {} targets cover 95% of activity",
        exp.profile.functions.len(),
        exp.target_functions.len()
    );
    exp
}

/// Runs all three campaigns, printing progress.
pub fn run_study(exp: &Experiment) -> StudyResult {
    eprintln!(
        "[kfi] running campaigns A/B/C over {} functions (cap {:?}, {} threads)...",
        exp.target_functions.len(),
        exp.config.max_per_function,
        exp.config.threads
    );
    let study = exp.run_all();
    for (l, r) in &study.campaigns {
        let t = r.total();
        eprintln!(
            "[kfi] campaign {l}: {} injected, {} activated, {} crash/hang",
            t.injected,
            t.activated,
            t.crash_or_hang()
        );
    }
    study
}
