//! The campaign matrix: `kernel config × workload × target subsystem`.
//!
//! The paper runs one kernel, one workload mix, and four subsystems.
//! The CentOS-like-OS fault study (PAPERS.md) shows the payoff of
//! running the *same* analysis as a matrix over kernel/workload
//! variants; this module does that for the reproduction. Each matrix
//! cell pins one kernel build, forces one workload (run mode) instead
//! of the profile-driven mode choice, and plans campaign-A injections
//! over every function of one subsystem. Cells execute through
//! [`run_plan_supervised`], so they inherit the whole supervised
//! machinery: panic-isolated workers, deterministic plan sharding
//! across any worker count, the plan-index reorder buffer in front of
//! per-cell journals, and `--resume`.
//!
//! Determinism contract: a cell's plan is a pure function of (kernel
//! image, subsystem, matrix seed, caps) — the per-cell RNG is seeded
//! from the matrix seed XOR an FNV-1a hash of the cell key, so cells
//! are independent of each other and of the grid they are embedded in.
//! Records, metrics, and journal bytes are identical at any worker
//! count and across interrupt/resume, per cell (`tests/matrix.rs`).

use crate::dataset::{metrics_csv_line, to_csv_line, RecordRow, CSV_HEADER, METRICS_CSV_HEADER};
use crate::experiment::{CampaignResult, Experiment, ExperimentConfig};
use crate::supervisor::{run_plan_supervised, SupervisorConfig, SupervisorReport};
use kfi_injector::{plan_function, Campaign, InjectionTarget, RigConfig};
use kfi_kernel::KernelBuildOptions;
use kfi_profiler::ProfilerConfig;
use kfi_workloads::Suite;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

/// One cell key of the matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatrixCell {
    /// Kernel variant name (the first element of a
    /// [`MatrixConfig::kernels`] pair).
    pub kernel: String,
    /// Workload name (must resolve in the configured suite).
    pub workload: String,
    /// Target subsystem (every function tagged with it is planned).
    pub subsystem: String,
}

impl MatrixCell {
    /// The cell's stable string key, `kernel/workload/subsystem`.
    pub fn key(&self) -> String {
        format!("{}/{}/{}", self.kernel, self.workload, self.subsystem)
    }
}

/// Matrix configuration: the three axes plus the shared campaign knobs.
#[derive(Debug, Clone)]
pub struct MatrixConfig {
    /// Kernel variants: `(name, build options)`. One experiment (one
    /// boot + one golden set) is prepared per variant and shared by all
    /// of its cells.
    pub kernels: Vec<(String, KernelBuildOptions)>,
    /// Workload axis (each must resolve in [`MatrixConfig::suite`]).
    pub workloads: Vec<String>,
    /// Subsystem axis.
    pub subsystems: Vec<String>,
    /// Matrix seed; each cell derives its own plan RNG from it.
    pub seed: u64,
    /// Worker threads per cell campaign.
    pub threads: usize,
    /// Cap on planned injections per function (None = all).
    pub max_per_function: Option<usize>,
    /// Cap on total planned injections per cell (None = all).
    pub max_per_cell: Option<usize>,
    /// Profiler settings for experiment preparation (the matrix forces
    /// modes, so profile quality only affects preparation time).
    pub profiler: ProfilerConfig,
    /// Rig settings.
    pub rig: RigConfig,
    /// Workload suite installed in the guest filesystem.
    pub suite: Suite,
    /// Directory for per-cell journals (`matrix_<kernel>_<workload>_
    /// <subsystem>.journal`); `None` disables journaling.
    pub journal_dir: Option<PathBuf>,
    /// Resume each cell from its journal instead of truncating.
    pub resume: bool,
}

impl Default for MatrixConfig {
    fn default() -> MatrixConfig {
        MatrixConfig {
            kernels: vec![
                ("base".into(), KernelBuildOptions::default()),
                ("server".into(), KernelBuildOptions { server: true, ..Default::default() }),
            ],
            workloads: kfi_workloads::TRAFFIC_WORKLOADS.iter().map(|w| w.to_string()).collect(),
            subsystems: vec!["ipc".into(), "net".into()],
            seed: 2003,
            threads: 1,
            max_per_function: Some(2),
            max_per_cell: None,
            profiler: ProfilerConfig::default(),
            rig: RigConfig::default(),
            suite: Suite::Traffic,
            journal_dir: None,
            resume: false,
        }
    }
}

/// One executed cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// The cell key.
    pub cell: MatrixCell,
    /// The campaign result (records in plan order, merged metrics).
    pub result: CampaignResult,
    /// The supervisor's report for this cell.
    pub report: SupervisorReport,
}

/// The full matrix dataset.
#[derive(Debug, Clone)]
pub struct MatrixResult {
    /// Cells in axis order: kernels × workloads × subsystems.
    pub cells: Vec<CellResult>,
    /// Matrix seed used.
    pub seed: u64,
}

/// FNV-1a over a string — the per-cell seed perturbation. Stable by
/// construction (no `DefaultHasher`, whose output may change between
/// Rust releases, in anything feeding a golden surface).
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Plans one cell: campaign-A targets over every function tagged with
/// the cell's subsystem, the workload's run mode forced on every
/// target.
///
/// # Errors
///
/// The workload not resolving in the experiment's suite.
pub fn plan_cell(
    exp: &Experiment,
    cell: &MatrixCell,
    seed: u64,
    max_per_function: Option<usize>,
    max_per_cell: Option<usize>,
) -> Result<Vec<(InjectionTarget, u32)>, String> {
    let mode = exp.config.suite.mode_of(&cell.workload).ok_or_else(|| {
        format!("workload `{}` not in suite {:?}", cell.workload, exp.config.suite)
    })?;
    let mut rng = StdRng::seed_from_u64(seed ^ fnv1a(&cell.key()));
    let mut out = Vec::new();
    for sym in exp.image.program.symbols.functions() {
        if sym.subsystem.as_deref() != Some(cell.subsystem.as_str()) {
            continue;
        }
        let mut t = plan_function(&exp.image, &sym.name, Campaign::A, &mut rng);
        if let Some(cap) = max_per_function {
            t.truncate(cap);
        }
        out.extend(t.into_iter().map(|t| (t, mode)));
    }
    if let Some(cap) = max_per_cell {
        out.truncate(cap);
    }
    Ok(out)
}

/// Runs the whole matrix: one prepared experiment per kernel variant,
/// one supervised campaign per cell, cells in axis order.
///
/// # Errors
///
/// Kernel/workload build failures, unknown workloads, and journal I/O.
pub fn run_matrix(cfg: &MatrixConfig) -> Result<MatrixResult, String> {
    let mut cells = Vec::new();
    for (kernel_name, kernel_opts) in &cfg.kernels {
        let exp = Experiment::prepare(ExperimentConfig {
            seed: cfg.seed,
            max_per_function: cfg.max_per_function,
            threads: cfg.threads,
            kernel: *kernel_opts,
            profiler: cfg.profiler.clone(),
            rig: cfg.rig,
            suite: cfg.suite,
            ..Default::default()
        })?;
        for workload in &cfg.workloads {
            for subsystem in &cfg.subsystems {
                let cell = MatrixCell {
                    kernel: kernel_name.clone(),
                    workload: workload.clone(),
                    subsystem: subsystem.clone(),
                };
                let plan =
                    plan_cell(&exp, &cell, cfg.seed, cfg.max_per_function, cfg.max_per_cell)?;
                let sup = SupervisorConfig {
                    journal: cfg.journal_dir.as_ref().map(|d| {
                        d.join(format!(
                            "matrix_{}_{}_{}.journal",
                            cell.kernel, cell.workload, cell.subsystem
                        ))
                    }),
                    resume: cfg.resume,
                    ..SupervisorConfig::default()
                };
                let out = run_plan_supervised(&exp, Campaign::A, plan, &sup)?;
                cells.push(CellResult { cell, result: out.result, report: out.report });
            }
        }
    }
    Ok(MatrixResult { cells, seed: cfg.seed })
}

/// Renders the matrix dataset as CSV: the record table then a blank
/// line then the metrics table, exactly the existing golden CSV layout
/// with three matrix-key columns (`kernel,workload,subsystem`)
/// prefixed to both headers and every row.
pub fn matrix_to_csv(m: &MatrixResult) -> String {
    let mut s = format!("kernel,workload,subsystem,{CSV_HEADER}\n");
    for c in &m.cells {
        let key = format!("{},{},{}", c.cell.kernel, c.cell.workload, c.cell.subsystem);
        for r in &c.result.records {
            s.push_str(&key);
            s.push(',');
            s.push_str(&to_csv_line(&RecordRow::from_record(r)));
            s.push('\n');
        }
    }
    s.push('\n');
    s.push_str(&format!("kernel,workload,subsystem,{METRICS_CSV_HEADER}\n"));
    for c in &m.cells {
        let key = format!("{},{},{}", c.cell.kernel, c.cell.workload, c.cell.subsystem);
        s.push_str(&key);
        s.push(',');
        s.push_str(&metrics_csv_line(c.result.campaign.letter(), &c.result.metrics));
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_keys_and_fnv_are_stable() {
        let cell = MatrixCell {
            kernel: "server".into(),
            workload: "echo".into(),
            subsystem: "ipc".into(),
        };
        assert_eq!(cell.key(), "server/echo/ipc");
        // FNV-1a is pinned: a silent change would reshuffle every cell
        // plan under the golden surface.
        assert_eq!(fnv1a(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a("a"), 0xaf63_dc4c_8601_ec8c);
    }
}
