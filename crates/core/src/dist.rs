//! The distributed campaign runner: process-isolated workers under
//! lease-based fault tolerance, with a built-in chaos harness.
//!
//! The supervisor ([`crate::supervisor`]) contains panics, but
//! `catch_unwind` cannot contain aborts, stack overflows, OOM kills or
//! SIGKILL. This module puts a *process* boundary around the rig: a
//! coordinator shards the deterministic campaign plan across worker
//! subprocesses that stream classified runs back over the existing
//! wire codec ([`kfi_injector::wire`]) with CRC framing
//! ([`kfi_trace::frame`]) on plain pipes.
//!
//! **Lease-based scheduling.** Each worker holds a chunk of plan
//! indices under a lease. A worker proves liveness with a handshake
//! ([`Msg::Hello`] carrying a plan fingerprint) and periodic
//! heartbeats; a missed heartbeat, a dead pipe, a nonzero exit or a
//! wedged handshake expires the lease. Expiry is fenced — the worker is
//! SIGKILLed *before* its jobs are reassigned — so a presumed-dead
//! worker can never race a successor. Failed workers are respawned
//! with exponential backoff up to a bounded respawn budget; a slot
//! that exhausts its budget is quarantined, and if every slot dies the
//! coordinator degrades to running the remaining jobs in-process. A
//! job that expires too many leases in a row is recorded as
//! [`kfi_injector::Outcome::RigFault`] instead of looping forever.
//! Either way, lost runs are never silent.
//!
//! **Merge determinism.** Each run's record and metrics delta is a
//! pure function of its `(target, mode)` — independent of which
//! worker executes it, in which order, after how many retries (the
//! retry-equivalence proptests pin this). Accepted results are deduped
//! by plan index (first completion wins; duplicates are byte-identical
//! by the same argument) and flow through the supervisor's plan-index
//! reorder buffer into the journal. CSV, report and journal bytes are
//! therefore identical at any worker count, any arrival order and any
//! kill schedule — which the built-in chaos mode ([`DistConfig::chaos`]
//! randomly SIGKILLs, stalls and crashes workers mid-campaign) proves
//! in-tree. None of this is uniprocessor-specific: an SMP guest
//! (`--cpus N`, forwarded to workers in their spawn args because it is
//! plan-determining) interleaves as a pure function of the machine's
//! own seed and quantum, so no host property — process boundaries,
//! lease churn, the kill schedule — can reach the guest schedule.

use crate::experiment::{CampaignResult, Experiment, StudyResult};
use crate::journal::{Journal, JournalEntry};
use crate::supervisor::{
    open_journal, process_job, rig_fault_record, Job, JobDone, JournalOrder, SupervisorConfig,
    WatchSlot,
};
use kfi_injector::wire::{decode_msg, encode_msg, Msg, PROTOCOL_VERSION};
use kfi_injector::{Campaign, InjectionTarget, InjectorRig, RunRecord};
use kfi_trace::frame::{write_frame, StreamDecoder};
use kfi_trace::{outcome as trace_outcome, Metrics};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io::{Read, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::{Duration, Instant};

/// 64-bit FNV-1a, chained: feeds `bytes` into `state`.
fn fnv1a(mut state: u64, bytes: &[u8]) -> u64 {
    for b in bytes {
        state ^= *b as u64;
        state = state.wrapping_mul(0x100_0000_01b3);
    }
    state
}

/// Fingerprint of the full deterministic study plan (seed plus every
/// campaign's `(target, mode)` sequence). Coordinator and worker both
/// derive it from their own CLI config; the handshake rejects a worker
/// whose fingerprint differs, so a mixed build or drifted flag set can
/// never smuggle foreign records into the dataset.
pub fn plan_fingerprint(exp: &Experiment) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    h = fnv1a(h, &exp.config.seed.to_le_bytes());
    for campaign in [Campaign::A, Campaign::B, Campaign::C] {
        h = fnv1a(h, &[campaign.letter() as u8]);
        for t in exp.plan(campaign) {
            let mode = exp.mode_for(&t);
            h = fnv1a(h, t.function.as_bytes());
            h = fnv1a(h, t.subsystem.as_bytes());
            h = fnv1a(h, &t.insn_addr.to_le_bytes());
            h = fnv1a(h, &[t.insn_len, t.bit_mask, t.is_branch as u8]);
            h = fnv1a(h, &(t.byte_index as u64).to_le_bytes());
            h = fnv1a(h, &mode.to_le_bytes());
        }
    }
    h
}

/// Lease chunk size for a plan: small enough that every worker gets
/// several leases (so a lost lease costs a fraction of the plan, and
/// finish-time stragglers rebalance), never zero.
pub fn chunk_size(plan_len: usize, workers: usize) -> usize {
    plan_len.div_ceil(workers.max(1) * 4).max(1)
}

/// What the chaos harness does to a victim worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// SIGKILL — the failure `catch_unwind` can never contain.
    Kill,
    /// Ask the worker to park forever without heartbeating (simulated
    /// livelock; reaped by the heartbeat deadline).
    Stall,
    /// Ask the worker to exit with a nonzero code (simulated crash).
    Exit,
}

/// One scheduled chaos event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosEvent {
    /// Fires once this many results have been accepted study-wide.
    pub at_done: usize,
    /// What to do to the victim.
    pub action: ChaosAction,
    /// Raw random value used to pick the victim among live slots at
    /// fire time.
    pub pick: u64,
}

/// A deterministic schedule of worker failures, derived from the chaos
/// seed. The first event is always a [`ChaosAction::Kill`] so a chaos
/// campaign always proves SIGKILL recovery; events are bounded so the
/// respawn budget can absorb them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Events sorted by [`ChaosEvent::at_done`].
    pub events: Vec<ChaosEvent>,
}

impl ChaosPlan {
    /// Number of events a chaos schedule contains.
    pub const EVENTS: usize = 3;

    /// Builds the schedule for a study of `total_jobs` planned runs.
    pub fn new(seed: u64, total_jobs: usize) -> ChaosPlan {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC4A0_5EED);
        let span = (total_jobs.saturating_mul(3) / 4).max(1);
        let mut events = Vec::with_capacity(Self::EVENTS);
        for i in 0..Self::EVENTS {
            let action = if i == 0 {
                ChaosAction::Kill
            } else {
                match rng.gen_range(0u32..3) {
                    0 => ChaosAction::Kill,
                    1 => ChaosAction::Stall,
                    _ => ChaosAction::Exit,
                }
            };
            events.push(ChaosEvent {
                at_done: rng.gen_range(0..span),
                action,
                pick: rng.next_u64(),
            });
        }
        events.sort_by_key(|e| e.at_done);
        ChaosPlan { events }
    }
}

/// Coordinator policy for a distributed campaign.
#[derive(Debug, Clone)]
pub struct DistConfig {
    /// Worker subprocess pool size.
    pub workers: usize,
    /// Chaos-harness seed; `Some` enables random worker failures.
    pub chaos: Option<u64>,
    /// Budget for a freshly-spawned worker to complete its handshake
    /// (it builds the kernel and profiles the workloads first). A
    /// wedged worker is reaped and respawned when this expires.
    pub handshake_budget: Duration,
    /// Silence budget after which a handshaken worker's lease expires.
    /// Workers heartbeat every ~100 ms even mid-run, so this bounds
    /// detection latency for SIGKILLed, stalled, or livelocked workers.
    pub heartbeat_budget: Duration,
    /// Respawns granted to each slot before it is quarantined.
    pub max_respawns: usize,
    /// Backoff before the first respawn of a slot; doubles per respawn.
    pub backoff_base: Duration,
    /// Lease expiries a single plan index may cause before it is
    /// recorded as a rig fault instead of reassigned again — a job
    /// that reliably kills workers must not starve the campaign.
    pub max_job_expiries: usize,
    /// Journal path; accepted runs are checkpointed here in plan-index
    /// order, exactly as the in-process supervisor would.
    pub journal: Option<PathBuf>,
    /// Resume from the journal instead of truncating it.
    pub resume: bool,
    /// Test-only: the very first spawned worker wedges before its
    /// handshake, exercising the handshake-timeout reap path.
    pub wedge_first_handshake: bool,
    /// Worker executable (normally the current binary).
    pub worker_exe: PathBuf,
    /// Arguments that turn the executable into a worker with the same
    /// plan-determining configuration as the coordinator.
    pub worker_args: Vec<String>,
}

impl DistConfig {
    /// A config with production defaults for the given pool.
    pub fn new(workers: usize, worker_exe: PathBuf, worker_args: Vec<String>) -> DistConfig {
        DistConfig {
            workers: workers.max(1),
            chaos: None,
            handshake_budget: Duration::from_secs(180),
            heartbeat_budget: Duration::from_secs(5),
            max_respawns: 2,
            backoff_base: Duration::from_millis(50),
            max_job_expiries: 4,
            journal: None,
            resume: false,
            wedge_first_handshake: false,
            worker_exe,
            worker_args,
        }
    }
}

/// What the coordinator did beyond the dataset itself. Everything here
/// is reporting-only: the dataset is independent of worker count,
/// scheduling and failures.
#[derive(Debug, Clone, Default)]
pub struct DistReport {
    /// Worker processes spawned, including respawns.
    pub workers_spawned: u64,
    /// Respawns after a worker died or was reaped.
    pub workers_respawned: u64,
    /// Slots quarantined after exhausting their respawn budget.
    pub workers_quarantined: u64,
    /// Workers reaped for missing the handshake deadline.
    pub handshake_timeouts: u64,
    /// Leases expired (missed heartbeat, dead pipe, nonzero exit).
    pub leases_expired: u64,
    /// Plan indices reassigned after a lease expiry.
    pub jobs_requeued: u64,
    /// Plan indices executed in-process after the pool collapsed.
    pub jobs_degraded: u64,
    /// Chaos SIGKILLs delivered.
    pub chaos_kills: u64,
    /// Chaos stall requests delivered.
    pub chaos_stalls: u64,
    /// Chaos exit requests delivered.
    pub chaos_exits: u64,
    /// Accepted record+metrics payload bytes streamed from workers.
    pub wire_bytes_streamed: u64,
    /// Runs replayed from the journal instead of executed.
    pub resumed_runs: usize,
    /// Journal fsync batches performed.
    pub journal_flushes: u64,
}

/// A distributed study: the ordinary result plus the coordinator's
/// report.
pub struct DistStudy {
    /// The study result — byte-for-byte the same dataset the
    /// in-process supervisor produces for this plan.
    pub study: StudyResult,
    /// What the coordinator had to do to get it.
    pub report: DistReport,
}

/// Worker-side policy for [`run_worker`].
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Interval between heartbeats.
    pub heartbeat_interval: Duration,
    /// Per-run supervision policy (retries, wall budget). The journal
    /// fields must stay unset: only the coordinator journals.
    pub supervisor: SupervisorConfig,
    /// Test-only: park before the handshake, exercising the
    /// coordinator's handshake-timeout reap.
    pub wedge_handshake: bool,
}

impl Default for WorkerConfig {
    fn default() -> WorkerConfig {
        WorkerConfig {
            heartbeat_interval: Duration::from_millis(100),
            supervisor: SupervisorConfig::default(),
            wedge_handshake: false,
        }
    }
}

/// Bytes of the `record + metrics` portion of a JobDone payload — the
/// scheduling-independent measure behind
/// [`Metrics::wire_bytes_streamed`] (lease ids vary with the kill
/// schedule; the record and its delta never do).
fn record_wire_len(record: &RunRecord, metrics: &Metrics) -> u64 {
    let mut buf = Vec::new();
    kfi_injector::wire::encode_record(&mut buf, record);
    metrics.encode_into(&mut buf);
    buf.len() as u64
}

fn send_msg(stdin: &mut ChildStdin, msg: &Msg) -> std::io::Result<()> {
    let mut payload = Vec::new();
    encode_msg(&mut payload, msg);
    let mut framed = Vec::new();
    write_frame(&mut framed, &payload);
    stdin.write_all(&framed)?;
    stdin.flush()
}

/// One message (or EOF) from a worker's reader thread.
struct RxEvent {
    slot: usize,
    gen: u64,
    msg: Option<Msg>,
}

struct Lease {
    id: u64,
    outstanding: BTreeSet<usize>,
}

enum SlotState {
    /// Spawned, waiting for a valid Hello.
    Handshaking { deadline: Instant },
    /// Handshaken, no lease.
    Idle,
    /// Holding a lease.
    Leased(Lease),
    /// Dead; respawn due at the deadline (exponential backoff).
    Respawning { at: Instant },
    /// Respawn budget exhausted; never used again.
    Retired,
}

struct Slot {
    child: Option<Child>,
    stdin: Option<ChildStdin>,
    /// Bumped per spawn; events from older generations are stale.
    gen: u64,
    state: SlotState,
    last_seen: Instant,
    respawns: usize,
}

/// Per-campaign scheduling state.
struct CampaignState {
    campaign: Campaign,
    plan: Vec<(InjectionTarget, u32)>,
    /// Unassigned plan indices.
    queue: VecDeque<usize>,
    /// Accepted plan indices (first completion wins).
    accepted: BTreeSet<usize>,
    /// Indices replayed from the journal; never executed or accepted.
    skipped: BTreeSet<usize>,
    /// Lease expiries caused per index.
    expiries: BTreeMap<usize, usize>,
    order: JournalOrder,
    done: Vec<JobDone>,
}

impl CampaignState {
    fn remaining(&self) -> usize {
        self.plan.len() - self.skipped.len() - self.accepted.len()
    }
}

/// The coordinator: worker pool + lease table + failure policy.
struct Pool<'a> {
    exp: &'a Experiment,
    cfg: &'a DistConfig,
    fingerprint: u64,
    slots: Vec<Slot>,
    tx: mpsc::Sender<RxEvent>,
    rx: mpsc::Receiver<RxEvent>,
    lease_seq: u64,
    /// Lease id → campaign letter it was granted for (stale-result
    /// guard across campaign boundaries).
    lease_campaign: BTreeMap<u64, char>,
    chaos: VecDeque<ChaosEvent>,
    chaos_rng: StdRng,
    /// Results accepted study-wide (chaos trigger clock).
    total_accepted: usize,
    /// First-spawn wedge flag, consumed once.
    wedge_pending: bool,
    report: DistReport,
    /// Dist counters for the campaign currently running; folded into
    /// its [`CampaignResult::metrics`] (journal/report surfaces exclude
    /// them, so the golden output is untouched).
    counters: Metrics,
}

impl<'a> Pool<'a> {
    fn new(exp: &'a Experiment, cfg: &'a DistConfig, total_jobs: usize) -> Pool<'a> {
        let (tx, rx) = mpsc::channel();
        let chaos = match cfg.chaos {
            Some(seed) => ChaosPlan::new(seed, total_jobs).events.into(),
            None => VecDeque::new(),
        };
        let now = Instant::now();
        let slots = (0..cfg.workers.max(1))
            .map(|_| Slot {
                child: None,
                stdin: None,
                gen: 0,
                state: SlotState::Respawning { at: now },
                last_seen: now,
                respawns: 0,
            })
            .collect();
        Pool {
            exp,
            cfg,
            fingerprint: plan_fingerprint(exp),
            slots,
            tx,
            rx,
            lease_seq: 0,
            lease_campaign: BTreeMap::new(),
            chaos_rng: StdRng::seed_from_u64(cfg.chaos.unwrap_or(0) ^ 0x51C7),
            chaos,
            total_accepted: 0,
            wedge_pending: cfg.wedge_first_handshake,
            report: DistReport::default(),
            counters: Metrics::default(),
        }
    }

    fn spawn_worker(&mut self, i: usize) {
        let wedge = std::mem::take(&mut self.wedge_pending);
        let mut cmd = Command::new(&self.cfg.worker_exe);
        cmd.args(&self.cfg.worker_args);
        if wedge {
            cmd.arg("--worker-wedge-handshake");
        }
        cmd.stdin(Stdio::piped()).stdout(Stdio::piped()).stderr(Stdio::null());
        let slot = &mut self.slots[i];
        slot.gen += 1;
        match cmd.spawn() {
            Ok(mut child) => {
                let stdin = child.stdin.take();
                let stdout = child.stdout.take();
                slot.stdin = stdin;
                slot.child = Some(child);
                slot.state =
                    SlotState::Handshaking { deadline: Instant::now() + self.cfg.handshake_budget };
                slot.last_seen = Instant::now();
                self.report.workers_spawned += 1;
                if let Some(stdout) = stdout {
                    spawn_reader(i, slot.gen, stdout, self.tx.clone());
                }
            }
            Err(_) => {
                // The exe itself is unusable; burning backoff retries
                // on it would change nothing.
                slot.state = SlotState::Retired;
                self.report.workers_quarantined += 1;
            }
        }
    }

    /// SIGKILL fence: the worker is dead and reaped before any of its
    /// jobs can be reassigned.
    fn kill_slot(&mut self, i: usize) {
        let slot = &mut self.slots[i];
        slot.stdin = None;
        if let Some(mut child) = slot.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }

    /// Expires slot `i`'s lease (if any), requeueing its outstanding
    /// indices, and schedules a respawn (or retires the slot).
    fn expire(&mut self, i: usize, st: &mut CampaignState, journal: &mut Option<Journal>) {
        self.kill_slot(i);
        let lease = match std::mem::replace(&mut self.slots[i].state, SlotState::Idle) {
            SlotState::Leased(l) => Some(l),
            _ => None,
        };
        if let Some(lease) = lease {
            self.report.leases_expired += 1;
            self.counters.leases_expired += 1;
            for index in lease.outstanding.into_iter().rev() {
                if st.accepted.contains(&index) {
                    continue;
                }
                let n = st.expiries.entry(index).or_insert(0);
                *n += 1;
                if *n > self.cfg.max_job_expiries {
                    // Persistent worker-killer: record the loss instead
                    // of reassigning it forever.
                    let (target, mode) = st.plan[index].clone();
                    let job = Job { index, target, mode };
                    let mut sup = Metrics::default();
                    sup.runs += 1;
                    sup.record_outcome(trace_outcome::RIG_FAULT);
                    let record = rig_fault_record(
                        &job,
                        &format!("expired {n} leases (worker lost each time)"),
                    );
                    self.accept(st, journal, index, record, sup);
                } else {
                    self.report.jobs_requeued += 1;
                    st.queue.push_front(index);
                }
            }
        }
        let slot = &mut self.slots[i];
        if slot.respawns >= self.cfg.max_respawns {
            slot.state = SlotState::Retired;
            self.report.workers_quarantined += 1;
        } else {
            let backoff = self.cfg.backoff_base * (1u32 << slot.respawns.min(16));
            slot.state = SlotState::Respawning { at: Instant::now() + backoff };
            slot.respawns += 1;
            self.report.workers_respawned += 1;
            self.counters.workers_respawned += 1;
        }
    }

    /// Accepts one result for a plan index: dedup, validate against the
    /// plan, merge, journal in plan order.
    fn accept(
        &mut self,
        st: &mut CampaignState,
        journal: &mut Option<Journal>,
        index: usize,
        record: RunRecord,
        metrics: Metrics,
    ) {
        if index >= st.plan.len() || st.accepted.contains(&index) || st.skipped.contains(&index) {
            return;
        }
        let (target, mode) = &st.plan[index];
        if record.target != *target || record.mode != *mode {
            // Stale or foreign result (e.g. an old campaign's index
            // arriving late from a killed worker's pipe): drop it.
            return;
        }
        st.accepted.insert(index);
        self.total_accepted += 1;
        let wire_len = record_wire_len(&record, &metrics);
        self.counters.wire_bytes_streamed += wire_len;
        self.report.wire_bytes_streamed += wire_len;
        if let Some(pos) = st.queue.iter().position(|q| *q == index) {
            st.queue.remove(pos);
        }
        if let Some(j) = journal.as_mut() {
            st.order.held.insert(
                index,
                JournalEntry {
                    campaign: st.campaign.letter(),
                    index,
                    record: record.clone(),
                    metrics: metrics.clone(),
                },
            );
            st.order.drain(j);
        }
        st.done.push(JobDone { index, record, metrics, quarantine: None });
    }

    /// Grants a fresh lease chunk to an idle worker.
    fn grant(&mut self, i: usize, st: &mut CampaignState) {
        let n = chunk_size(st.plan.len(), self.cfg.workers);
        let mut indices = Vec::with_capacity(n);
        while indices.len() < n {
            match st.queue.pop_front() {
                Some(idx) => indices.push(idx),
                None => break,
            }
        }
        if indices.is_empty() {
            return;
        }
        self.lease_seq += 1;
        let id = self.lease_seq;
        self.lease_campaign.insert(id, st.campaign.letter());
        let msg = Msg::LeaseGrant {
            lease: id,
            campaign: st.campaign,
            indices: indices.iter().map(|v| *v as u64).collect(),
        };
        let sent = match self.slots[i].stdin.as_mut() {
            Some(stdin) => send_msg(stdin, &msg).is_ok(),
            None => false,
        };
        if sent {
            self.slots[i].state =
                SlotState::Leased(Lease { id, outstanding: indices.into_iter().collect() });
        } else {
            // Dead pipe: give the chunk back and expire the slot.
            for idx in indices.into_iter().rev() {
                st.queue.push_front(idx);
            }
            self.expire(i, st, &mut None);
        }
    }

    fn handle_msg(&mut self, ev: RxEvent, st: &mut CampaignState, journal: &mut Option<Journal>) {
        let i = ev.slot;
        let current = ev.gen == self.slots[i].gen;
        let Some(msg) = ev.msg else {
            // EOF: the worker died or closed its pipe.
            if current
                && !matches!(self.slots[i].state, SlotState::Respawning { .. } | SlotState::Retired)
            {
                self.expire(i, st, journal);
            }
            return;
        };
        // JobDone results are accepted even from a stale generation:
        // the bytes were in flight before the fence, and determinism
        // makes them identical to what a reassigned worker produces.
        if let Msg::JobDone { lease, index, record, metrics } = msg {
            if self.lease_campaign.get(&lease) == Some(&st.campaign.letter()) {
                self.accept(st, journal, index as usize, record, *metrics);
                if current {
                    self.slots[i].last_seen = Instant::now();
                    if let SlotState::Leased(l) = &mut self.slots[i].state {
                        if l.id == lease {
                            l.outstanding.remove(&(index as usize));
                            if l.outstanding.is_empty() {
                                self.slots[i].state = SlotState::Idle;
                            }
                        }
                    }
                }
            }
            return;
        }
        if !current {
            return;
        }
        self.slots[i].last_seen = Instant::now();
        match msg {
            Msg::Hello { protocol, fingerprint, seed } => {
                let ok = protocol == PROTOCOL_VERSION
                    && fingerprint == self.fingerprint
                    && seed == self.exp.config.seed;
                if ok {
                    if matches!(self.slots[i].state, SlotState::Handshaking { .. }) {
                        self.slots[i].state = SlotState::Idle;
                    }
                } else {
                    // A worker computing a different plan must never
                    // contribute records; respawning the same exe would
                    // produce the same mismatch, so retire the slot.
                    self.kill_slot(i);
                    self.slots[i].state = SlotState::Retired;
                    self.report.workers_quarantined += 1;
                }
            }
            Msg::Heartbeat { .. } | Msg::LeaseAck { .. } => {}
            // Worker-bound messages are never valid coordinator-bound.
            Msg::LeaseGrant { .. } | Msg::Stall | Msg::Die { .. } | Msg::Shutdown => {}
            Msg::JobDone { .. } => unreachable!("handled above"),
        }
    }

    /// Fires any chaos events whose trigger count has been reached.
    fn fire_chaos(&mut self, st: &mut CampaignState, journal: &mut Option<Journal>) {
        while let Some(ev) = self.chaos.front() {
            if self.total_accepted < ev.at_done {
                break;
            }
            let ev = self.chaos.pop_front().expect("front exists");
            let live: Vec<usize> = self
                .slots
                .iter()
                .enumerate()
                .filter(|(_, s)| s.child.is_some())
                .map(|(i, _)| i)
                .collect();
            if live.is_empty() {
                continue;
            }
            let victim = live[(ev.pick % live.len() as u64) as usize];
            let _ = self.chaos_rng.next_u64();
            match ev.action {
                ChaosAction::Kill => {
                    self.report.chaos_kills += 1;
                    self.counters.chaos_kills += 1;
                    self.expire(victim, st, journal);
                }
                ChaosAction::Stall => {
                    self.report.chaos_stalls += 1;
                    if let Some(stdin) = self.slots[victim].stdin.as_mut() {
                        let _ = send_msg(stdin, &Msg::Stall);
                    }
                }
                ChaosAction::Exit => {
                    self.report.chaos_exits += 1;
                    if let Some(stdin) = self.slots[victim].stdin.as_mut() {
                        let _ = send_msg(stdin, &Msg::Die { code: 3 });
                    }
                }
            }
        }
    }

    /// One scheduling pass: deadlines, respawns, lease grants, chaos.
    fn tick(&mut self, st: &mut CampaignState, journal: &mut Option<Journal>) {
        let now = Instant::now();
        for i in 0..self.slots.len() {
            match self.slots[i].state {
                SlotState::Handshaking { deadline } => {
                    if now >= deadline {
                        self.report.handshake_timeouts += 1;
                        self.expire(i, st, journal);
                    }
                }
                SlotState::Idle | SlotState::Leased(_) => {
                    if now.duration_since(self.slots[i].last_seen) > self.cfg.heartbeat_budget {
                        self.expire(i, st, journal);
                    }
                }
                SlotState::Respawning { at } => {
                    if now >= at && st.remaining() > 0 {
                        self.spawn_worker(i);
                    }
                }
                SlotState::Retired => {}
            }
        }
        for i in 0..self.slots.len() {
            if matches!(self.slots[i].state, SlotState::Idle) && !st.queue.is_empty() {
                self.grant(i, st);
            }
        }
        self.fire_chaos(st, journal);
    }

    /// True when no slot can ever make progress again.
    fn collapsed(&self) -> bool {
        self.slots.iter().all(|s| matches!(s.state, SlotState::Retired))
    }

    /// Sends Shutdown to every live worker, grants a short grace
    /// period, then SIGKILLs stragglers and reaps everything.
    fn shutdown(&mut self) {
        for slot in &mut self.slots {
            if let Some(stdin) = slot.stdin.as_mut() {
                let _ = send_msg(stdin, &Msg::Shutdown);
            }
            slot.stdin = None; // EOF on the worker's stdin
        }
        let deadline = Instant::now() + Duration::from_millis(500);
        loop {
            let mut alive = false;
            for slot in &mut self.slots {
                if let Some(child) = slot.child.as_mut() {
                    match child.try_wait() {
                        Ok(Some(_)) => {
                            slot.child = None;
                        }
                        _ => alive = true,
                    }
                }
            }
            if !alive || Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        for i in 0..self.slots.len() {
            self.kill_slot(i);
        }
    }
}

fn spawn_reader(
    slot: usize,
    gen: u64,
    mut stdout: std::process::ChildStdout,
    tx: mpsc::Sender<RxEvent>,
) {
    std::thread::spawn(move || {
        let mut dec = StreamDecoder::new();
        let mut buf = [0u8; 8192];
        let drain = |dec: &mut StreamDecoder| -> bool {
            while let Some(payload) = dec.next_frame() {
                let mut pos = 0;
                if let Ok(msg) = decode_msg(&payload, &mut pos) {
                    if tx.send(RxEvent { slot, gen, msg: Some(msg) }).is_err() {
                        return false;
                    }
                }
            }
            true
        };
        loop {
            match stdout.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => {
                    dec.push(&buf[..n]);
                    if !drain(&mut dec) {
                        return;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
        dec.finish();
        drain(&mut dec);
        let _ = tx.send(RxEvent { slot, gen, msg: None });
    });
}

/// Runs one campaign's plan over the pool.
fn run_campaign_dist(
    pool: &mut Pool<'_>,
    campaign: Campaign,
    journal: &mut Option<Journal>,
    resumed: &BTreeMap<char, BTreeMap<usize, JournalEntry>>,
) -> CampaignResult {
    let exp = pool.exp;
    let plan: Vec<(InjectionTarget, u32)> = exp
        .plan(campaign)
        .into_iter()
        .map(|t| {
            let mode = exp.mode_for(&t);
            (t, mode)
        })
        .collect();
    let functions_injected = {
        let mut fs: Vec<&str> = plan.iter().map(|(t, _)| t.function.as_str()).collect();
        fs.sort_unstable();
        fs.dedup();
        fs.len()
    };

    // Resume: a journaled entry only replays when it matches the plan
    // exactly, mirroring the in-process supervisor.
    let empty = BTreeMap::new();
    let journaled = resumed.get(&campaign.letter()).unwrap_or(&empty);
    let mut done: Vec<JobDone> = Vec::new();
    let mut queue = VecDeque::new();
    let mut skipped = BTreeSet::new();
    for (index, (target, mode)) in plan.iter().enumerate() {
        match journaled.get(&index) {
            Some(e) if e.record.target == *target && e.record.mode == *mode => {
                skipped.insert(index);
                done.push(JobDone {
                    index,
                    record: e.record.clone(),
                    metrics: e.metrics.clone(),
                    quarantine: None,
                });
            }
            _ => queue.push_back(index),
        }
    }
    pool.report.resumed_runs += skipped.len();

    let mut st = CampaignState {
        campaign,
        plan,
        queue,
        accepted: BTreeSet::new(),
        skipped: skipped.clone(),
        expiries: BTreeMap::new(),
        order: JournalOrder::new(skipped),
        done,
    };

    while st.remaining() > 0 {
        if pool.collapsed() {
            degrade_in_process(pool, &mut st, journal);
            break;
        }
        pool.tick(&mut st, journal);
        match pool.rx.recv_timeout(Duration::from_millis(20)) {
            Ok(ev) => {
                pool.handle_msg(ev, &mut st, journal);
                // Drain whatever else is already queued before the next
                // scheduling pass.
                while let Ok(ev) = pool.rx.try_recv() {
                    pool.handle_msg(ev, &mut st, journal);
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                degrade_in_process(pool, &mut st, journal);
                break;
            }
        }
    }

    st.done.sort_by_key(|d| d.index);
    let mut metrics = Metrics::default();
    let mut records = Vec::with_capacity(st.done.len());
    for d in st.done {
        metrics.merge(&d.metrics);
        records.push(d.record);
    }
    // Fold in this campaign's coordinator counters. They are excluded
    // from the CSV and report surfaces (like `journal_flushes`), so the
    // golden output stays byte-identical to the in-process supervisor.
    metrics.merge(&std::mem::take(&mut pool.counters));
    CampaignResult { campaign, records, functions_injected, metrics }
}

/// The pool is gone: finish the campaign on this thread so it always
/// completes — the supervisor's main-thread fallback, one level up.
fn degrade_in_process(pool: &mut Pool<'_>, st: &mut CampaignState, journal: &mut Option<Journal>) {
    // Reclaim every index still outstanding on an expired-but-unreaped
    // lease (collapse can race the last expiry).
    let mut outstanding: Vec<usize> = Vec::new();
    for slot in &mut pool.slots {
        if let SlotState::Leased(l) = std::mem::replace(&mut slot.state, SlotState::Retired) {
            outstanding.extend(l.outstanding);
        }
    }
    for idx in outstanding {
        if !st.accepted.contains(&idx) && !st.queue.contains(&idx) {
            st.queue.push_back(idx);
        }
    }
    let sup = SupervisorConfig::default();
    let slot = WatchSlot::new();
    let mut rig: Option<InjectorRig> = None;
    while let Some(index) = st.queue.pop_front() {
        if st.accepted.contains(&index) {
            continue;
        }
        let (target, mode) = st.plan[index].clone();
        let job = Job { index, target, mode };
        pool.report.jobs_degraded += 1;
        match process_job(pool.exp, &sup, &job, &mut rig, &slot) {
            Ok(done) => {
                pool.accept(st, journal, done.index, done.record, done.metrics);
            }
            Err(()) => {
                let mut m = Metrics::default();
                m.runs += 1;
                m.record_outcome(trace_outcome::RIG_FAULT);
                let record = rig_fault_record(&job, "rig could not be built on any worker");
                pool.accept(st, journal, index, record, m);
            }
        }
    }
}

/// Runs all three campaigns across a pool of worker subprocesses.
///
/// The dataset (records, CSV, journal bytes) is identical to
/// [`crate::supervisor::run_study_supervised`] with a default policy —
/// at any worker count, any arrival order, and under any kill
/// schedule, including the chaos harness's.
///
/// # Errors
///
/// Journal open/read failures (bad header, seed mismatch, I/O).
pub fn run_study_dist(exp: &Experiment, cfg: &DistConfig) -> Result<DistStudy, String> {
    let sup_like = SupervisorConfig {
        journal: cfg.journal.clone(),
        resume: cfg.resume,
        ..SupervisorConfig::default()
    };
    let (mut journal, resumed) = open_journal(exp, &sup_like)?;
    let total_jobs: usize =
        [Campaign::A, Campaign::B, Campaign::C].iter().map(|c| exp.plan(*c).len()).sum();
    let mut pool = Pool::new(exp, cfg, total_jobs);
    let mut campaigns = BTreeMap::new();
    for c in [Campaign::A, Campaign::B, Campaign::C] {
        let result = run_campaign_dist(&mut pool, c, &mut journal, &resumed);
        campaigns.insert(c.letter(), result);
        if let Some(j) = journal.as_mut() {
            // Checkpoint the campaign boundary.
            j.sync().map_err(|e| e.to_string())?;
        }
    }
    pool.shutdown();
    let mut report = pool.report;
    if let Some(mut j) = journal {
        j.sync().map_err(|e| e.to_string())?;
        report.journal_flushes = j.flushes;
    }
    Ok(DistStudy { study: StudyResult { campaigns, seed: exp.config.seed }, report })
}

/// The worker half: handshake, heartbeat, lease execution. Speaks the
/// framed [`Msg`] protocol on `input`/`output` (stdin/stdout when
/// spawned by the coordinator) and returns on Shutdown or EOF.
///
/// # Errors
///
/// An explanation when the rig cannot be built — the worker must die
/// nonzero so the coordinator reassigns its lease.
pub fn run_worker<R: Read, W: Write + Send>(
    exp: &Experiment,
    cfg: &WorkerConfig,
    mut input: R,
    output: W,
) -> Result<(), String> {
    if cfg.wedge_handshake {
        // Test hook: never handshake; the coordinator must reap us.
        loop {
            std::thread::sleep(Duration::from_millis(50));
        }
    }
    let writer = Mutex::new(output);
    let send = |msg: &Msg| -> Result<(), String> {
        let mut payload = Vec::new();
        encode_msg(&mut payload, msg);
        let mut framed = Vec::new();
        write_frame(&mut framed, &payload);
        let mut w = writer.lock().expect("writer lock");
        w.write_all(&framed).and_then(|()| w.flush()).map_err(|e| e.to_string())
    };
    send(&Msg::Hello {
        protocol: PROTOCOL_VERSION,
        fingerprint: plan_fingerprint(exp),
        seed: exp.config.seed,
    })?;

    let jobs_done = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    let stalled = AtomicBool::new(false);
    let slot = WatchSlot::new();
    let mut plans: BTreeMap<char, Vec<(InjectionTarget, u32)>> = BTreeMap::new();
    let mut rig: Option<InjectorRig> = None;

    let mut out: Result<(), String> = Ok(());
    std::thread::scope(|s| {
        // Heartbeat thread: beats through long runs, goes quiet when
        // stalled (chaos) or stopping.
        s.spawn(|| {
            while !stop.load(Ordering::SeqCst) {
                if !stalled.load(Ordering::SeqCst) {
                    let msg = Msg::Heartbeat { jobs_done: jobs_done.load(Ordering::SeqCst) };
                    if send(&msg).is_err() {
                        // Coordinator gone; nothing to beat for.
                        break;
                    }
                }
                std::thread::sleep(cfg.heartbeat_interval);
            }
        });
        // Wall-clock watchdog, as in the in-process supervisor.
        if cfg.supervisor.wall_budget.is_some() {
            let budget = cfg.supervisor.wall_budget.expect("checked");
            let slot = &slot;
            let stop = &stop;
            s.spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    {
                        let started = slot.started.lock().expect("watch slot");
                        if let Some(t0) = *started {
                            if t0.elapsed() >= budget {
                                slot.abort.store(true, Ordering::SeqCst);
                            }
                        }
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            });
        }

        let mut dec = StreamDecoder::new();
        let mut buf = [0u8; 8192];
        'io: loop {
            while let Some(payload) = dec.next_frame() {
                let mut pos = 0;
                let Ok(msg) = decode_msg(&payload, &mut pos) else { continue };
                match msg {
                    Msg::LeaseGrant { lease, campaign, indices } => {
                        if send(&Msg::LeaseAck { lease }).is_err() {
                            break 'io;
                        }
                        let plan = plans.entry(campaign.letter()).or_insert_with(|| {
                            exp.plan(campaign)
                                .into_iter()
                                .map(|t| {
                                    let mode = exp.mode_for(&t);
                                    (t, mode)
                                })
                                .collect()
                        });
                        for raw in indices {
                            let index = raw as usize;
                            let Some((target, mode)) = plan.get(index).cloned() else { continue };
                            let job = Job { index, target, mode };
                            match process_job(exp, &cfg.supervisor, &job, &mut rig, &slot) {
                                Ok(done) => {
                                    jobs_done.fetch_add(1, Ordering::SeqCst);
                                    let msg = Msg::JobDone {
                                        lease,
                                        index: done.index as u64,
                                        record: done.record,
                                        metrics: Box::new(done.metrics),
                                    };
                                    if send(&msg).is_err() {
                                        break 'io;
                                    }
                                }
                                Err(()) => {
                                    out = Err("worker rig could not be built".into());
                                    break 'io;
                                }
                            }
                        }
                    }
                    Msg::Stall => {
                        // Simulated livelock: heartbeats stop, the
                        // process stays alive until SIGKILLed.
                        stalled.store(true, Ordering::SeqCst);
                        loop {
                            std::thread::sleep(Duration::from_millis(100));
                        }
                    }
                    Msg::Die { code } => {
                        std::process::exit(code as i32);
                    }
                    Msg::Shutdown => break 'io,
                    // Coordinator-bound frames are not ours to handle.
                    Msg::Hello { .. }
                    | Msg::LeaseAck { .. }
                    | Msg::Heartbeat { .. }
                    | Msg::JobDone { .. } => {}
                }
            }
            match input.read(&mut buf) {
                Ok(0) => break 'io,
                Ok(n) => dec.push(&buf[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break 'io,
            }
        }
        stop.store(true, Ordering::SeqCst);
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_size_covers_plan() {
        for plan_len in [0usize, 1, 2, 7, 31, 100, 1000] {
            for workers in [1usize, 2, 4, 8] {
                let n = chunk_size(plan_len, workers);
                assert!(n >= 1);
                if plan_len > 0 {
                    // Every index handed out exactly once across chunks.
                    let mut queue: VecDeque<usize> = (0..plan_len).collect();
                    let mut seen = Vec::new();
                    while !queue.is_empty() {
                        for _ in 0..n {
                            match queue.pop_front() {
                                Some(i) => seen.push(i),
                                None => break,
                            }
                        }
                    }
                    assert_eq!(seen, (0..plan_len).collect::<Vec<_>>());
                }
            }
        }
    }

    #[test]
    fn chaos_plan_is_deterministic_and_kill_first() {
        for seed in 0..32u64 {
            let a = ChaosPlan::new(seed, 120);
            let b = ChaosPlan::new(seed, 120);
            assert_eq!(a, b, "same seed, same schedule");
            assert_eq!(a.events.len(), ChaosPlan::EVENTS);
            assert!(
                a.events.iter().any(|e| e.action == ChaosAction::Kill),
                "every schedule proves SIGKILL recovery"
            );
            let span = 120 * 3 / 4;
            for e in &a.events {
                assert!(e.at_done < span);
            }
        }
        assert_ne!(ChaosPlan::new(1, 120), ChaosPlan::new(2, 120), "seed varies the schedule");
    }

    #[test]
    fn fnv_chaining_mixes() {
        let a = fnv1a(0xcbf2_9ce4_8422_2325, b"abc");
        let b = fnv1a(0xcbf2_9ce4_8422_2325, b"abd");
        assert_ne!(a, b);
        assert_eq!(a, fnv1a(fnv1a(0xcbf2_9ce4_8422_2325, b"ab"), b"c"));
    }
}
