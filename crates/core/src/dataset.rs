//! Flat, serializable run records for dataset export (CSV lines).

use kfi_injector::{Outcome, RunRecord};
use kfi_trace::Metrics;

/// One flattened run record.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordRow {
    /// Campaign letter (A/B/C).
    pub campaign: char,
    /// Target function.
    pub function: String,
    /// Injected subsystem.
    pub subsystem: String,
    /// Target instruction address.
    pub insn_addr: u32,
    /// Corrupted byte index within the instruction.
    pub byte_index: usize,
    /// XOR mask applied.
    pub bit_mask: u8,
    /// Workload mode used.
    pub mode: u32,
    /// Outcome category.
    pub outcome: String,
    /// Crash cause code (0 when not a crash).
    pub cause: u32,
    /// Crash EIP (0 when not a crash).
    pub crash_eip: u32,
    /// Subsystem where the crash landed (empty when not a crash).
    pub crash_subsystem: String,
    /// Crash latency in cycles (0 when not a crash).
    pub latency: u64,
    /// Severity name (empty when not a crash).
    pub severity: String,
    /// Cycles consumed by the run.
    pub run_cycles: u64,
    /// Machine sanitizer violations observed during the run (0 when the
    /// sanitizer is off).
    pub sanitizer_violations: u64,
}

impl RecordRow {
    /// Flattens a [`RunRecord`].
    pub fn from_record(r: &RunRecord) -> RecordRow {
        let (cause, crash_eip, crash_subsystem, latency, severity) = match &r.outcome {
            Outcome::Crash(i) => {
                (i.cause, i.eip, i.subsystem.clone(), i.latency, i.severity.name().to_string())
            }
            _ => (0, 0, String::new(), 0, String::new()),
        };
        RecordRow {
            campaign: r.target.campaign.letter(),
            function: r.target.function.clone(),
            subsystem: r.target.subsystem.clone(),
            insn_addr: r.target.insn_addr,
            byte_index: r.target.byte_index,
            bit_mask: r.target.bit_mask,
            mode: r.mode,
            outcome: r.outcome.category().to_string(),
            cause,
            crash_eip,
            crash_subsystem,
            latency,
            severity,
            run_cycles: r.run_cycles,
            sanitizer_violations: r.sanitizer_violations,
        }
    }
}

/// CSV header matching [`to_csv_line`].
pub const CSV_HEADER: &str = "campaign,function,subsystem,insn_addr,byte_index,bit_mask,mode,outcome,cause,crash_eip,crash_subsystem,latency,severity,run_cycles,sanitizer_violations";

/// Renders one row as a CSV line (fields contain no commas by
/// construction).
pub fn to_csv_line(r: &RecordRow) -> String {
    format!(
        "{},{},{},{:#x},{},{:#04x},{},{},{},{:#x},{},{},{},{},{}",
        r.campaign,
        r.function,
        r.subsystem,
        r.insn_addr,
        r.byte_index,
        r.bit_mask,
        r.mode,
        r.outcome.replace(' ', "_"),
        r.cause,
        r.crash_eip,
        r.crash_subsystem,
        r.latency,
        if r.severity.is_empty() { "-" } else { &r.severity },
        r.run_cycles,
        r.sanitizer_violations
    )
}

/// Renders a whole dataset as CSV.
pub fn to_csv(rows: &[RecordRow]) -> String {
    let mut s = String::from(CSV_HEADER);
    s.push('\n');
    for r in rows {
        s.push_str(&to_csv_line(r));
        s.push('\n');
    }
    s
}

/// CSV header matching [`metrics_csv_line`]: one row of campaign
/// execution metrics (the `CampaignResult::metrics` aggregate).
pub const METRICS_CSV_HEADER: &str = "campaign,runs,runs_not_activated,snapshot_restores,instructions,faults,syscalls,timer_irqs,tlb_hits,tlb_miss_walks,decode_hits,decode_misses,decode_invalidations,dirty_pages,run_cycles_total,sanitizer_violations,rig_panics,run_retries,quarantined_runs,wall_watchdog_fired";

/// Renders one campaign's merged [`Metrics`] as a CSV line.
///
/// `journal_flushes` is deliberately absent: flush counts depend on how
/// (and whether) a campaign was interrupted and resumed, and this CSV
/// must be bit-identical between an interrupted-and-resumed campaign
/// and an uninterrupted one.
pub fn metrics_csv_line(campaign: char, m: &Metrics) -> String {
    format!(
        "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
        campaign,
        m.runs,
        m.runs_not_activated,
        m.snapshot_restores,
        m.instructions,
        m.faults(),
        m.syscalls,
        m.timer_irqs,
        m.tlb_hits,
        m.tlb_miss_walks,
        m.decode_hits,
        m.decode_misses,
        m.decode_invalidations,
        m.dirty_pages,
        m.run_cycles_total,
        m.sanitizer_violations,
        m.rig_panics,
        m.run_retries,
        m.quarantined_runs,
        m.wall_watchdog_fired
    )
}

/// Renders per-campaign metrics as a CSV table, campaigns in the given
/// order.
pub fn metrics_to_csv<'a, I>(campaigns: I) -> String
where
    I: IntoIterator<Item = (char, &'a Metrics)>,
{
    let mut s = String::from(METRICS_CSV_HEADER);
    s.push('\n');
    for (c, m) in campaigns {
        s.push_str(&metrics_csv_line(c, m));
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use kfi_injector::{Campaign, InjectionTarget};

    #[test]
    fn csv_roundtrip_shape() {
        let r = RunRecord {
            target: InjectionTarget {
                campaign: Campaign::B,
                function: "schedule".into(),
                subsystem: "kernel".into(),
                insn_addr: 0xc0102000,
                insn_len: 2,
                byte_index: 1,
                bit_mask: 0x40,
                is_branch: true,
            },
            mode: 3,
            outcome: Outcome::NotManifested,
            activation_tsc: Some(123),
            run_cycles: 456,
            sanitizer_violations: 0,
        };
        let row = RecordRow::from_record(&r);
        assert_eq!(row.campaign, 'B');
        assert_eq!(row.outcome, "not manifested");
        let csv = to_csv(&[row]);
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some(CSV_HEADER));
        let line = lines.next().unwrap();
        assert!(line.starts_with("B,schedule,kernel,0xc0102000,1,0x40,3,not_manifested"));
        assert_eq!(line.split(',').count(), CSV_HEADER.split(',').count());
    }

    #[test]
    fn metrics_csv_shape() {
        let mut m = Metrics::default();
        m.runs = 4;
        m.instructions = 1_000;
        m.decode_hits = 800;
        m.decode_misses = 200;
        m.dirty_pages = 16;
        let csv = metrics_to_csv([('A', &m)]);
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some(METRICS_CSV_HEADER));
        let line = lines.next().unwrap();
        assert_eq!(line.split(',').count(), METRICS_CSV_HEADER.split(',').count());
        assert!(line.starts_with("A,4,"));
        assert!(line.contains(",800,200,"));
    }
}
