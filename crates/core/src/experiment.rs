//! Experiment orchestration: kernel build → profiling → target
//! selection → parallel campaign execution.

use crate::stats;
use kfi_injector::{
    plan_function, Campaign, InjectionTarget, InjectorRig, RigConfig, RigShared, RunRecord,
};
use kfi_kernel::{build_kernel, mkfs::FileSpec, KernelBuildOptions, KernelImage};
use kfi_profiler::{profile, KernelProfile, ProfilerConfig};
use kfi_trace::Metrics;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

/// Experiment-wide configuration.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// RNG seed: campaigns are exactly reproducible for a given seed.
    pub seed: u64,
    /// Fraction of profiling values the target set must cover (the
    /// paper's 95%).
    pub top_fraction: f64,
    /// Cap on planned injections per function per campaign (None = all,
    /// as in the paper; small values give quick scaled-down runs).
    pub max_per_function: Option<usize>,
    /// Worker threads for campaign execution.
    pub threads: usize,
    /// Kernel build options (assertions on/off for the ablation).
    pub kernel: KernelBuildOptions,
    /// Profiler settings.
    pub profiler: ProfilerConfig,
    /// Rig settings.
    pub rig: RigConfig,
    /// Workload suite driving the guest: the paper's eight UnixBench
    /// analogs (default — the golden-corpus configuration) or the
    /// traffic-shaped extension ([`kfi_workloads::Suite::Traffic`]).
    /// Selects the filesystem contents, the profiled workload list, and
    /// the number of golden run modes.
    pub suite: kfi_workloads::Suite,
    /// Whether workers share one post-boot snapshot and one memoized
    /// set of golden runs ([`kfi_injector::RigShared`]) instead of each
    /// booting and re-running the goldens privately. Default `true`;
    /// the `false` position is the recompute-per-rig reference path —
    /// results are bit-identical either way (`tests/golden_memo.rs`).
    pub memoize: bool,
}

impl Default for ExperimentConfig {
    fn default() -> ExperimentConfig {
        ExperimentConfig {
            seed: 2003,
            top_fraction: 0.95,
            max_per_function: None,
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            kernel: KernelBuildOptions::default(),
            profiler: ProfilerConfig::default(),
            rig: RigConfig::default(),
            suite: kfi_workloads::Suite::Paper,
            memoize: true,
        }
    }
}

/// The paper's four injected subsystems.
pub const INJECTED_SUBSYSTEMS: [&str; 4] = ["arch", "fs", "kernel", "mm"];

/// A prepared experiment: built kernel, workload files, kernel profile
/// and the selected target functions.
pub struct Experiment {
    /// Configuration used.
    pub config: ExperimentConfig,
    /// The kernel under test.
    pub image: KernelImage,
    /// Workload files installed in the filesystem image.
    pub files: Vec<FileSpec>,
    /// The Kernprof-equivalent profile.
    pub profile: KernelProfile,
    /// The core target functions (top functions covering
    /// `top_fraction` of samples, restricted to the four subsystems) —
    /// the paper's "top 32".
    pub target_functions: Vec<String>,
    /// Lazily-booted shared post-boot base for the memoized rig path:
    /// booted once by the first [`Experiment::make_rig`], then forked
    /// by every later rig (including supervisor rebuild-on-panic).
    /// Boot failures are memoized the same way. Untouched when
    /// [`ExperimentConfig::memoize`] is off.
    shared_base: OnceLock<Result<Arc<RigShared>, String>>,
}

/// Results of one campaign.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Which campaign.
    pub campaign: Campaign,
    /// Every run record.
    pub records: Vec<RunRecord>,
    /// Number of distinct functions injected.
    pub functions_injected: usize,
    /// Execution metrics, merged across workers in worker-index order
    /// (merge is pure addition, so the result is identical for any
    /// thread count).
    pub metrics: Metrics,
}

/// Results of the full study (all three campaigns).
#[derive(Debug, Clone)]
pub struct StudyResult {
    /// Per-campaign results.
    pub campaigns: BTreeMap<char, CampaignResult>,
    /// Seed used.
    pub seed: u64,
}

impl Experiment {
    /// Builds the kernel + workloads and profiles the kernel, selecting
    /// the top functions (paper Section 4).
    ///
    /// # Errors
    ///
    /// Returns a description when the kernel or a workload fails to
    /// assemble (programming error in the guest sources).
    pub fn prepare(config: ExperimentConfig) -> Result<Experiment, String> {
        let image = build_kernel(config.kernel).map_err(|e| e.to_string())?;
        let files = config.suite.files().map_err(|e| e.to_string())?;
        let workloads = config.suite.workloads();
        let profile = profile(&image, &files, &workloads, &config.profiler);
        let target_functions: Vec<String> = profile
            .top_covering(config.top_fraction)
            .into_iter()
            .filter(|f| INJECTED_SUBSYSTEMS.contains(&f.subsystem.as_str()))
            .map(|f| f.name.clone())
            .collect();
        Ok(Experiment {
            config,
            image,
            files,
            profile,
            target_functions,
            shared_base: OnceLock::new(),
        })
    }

    /// A copy of this experiment with a different worker-thread count.
    ///
    /// The shared post-boot base travels with the copy (it is
    /// thread-count independent), so sweeping thread counts — as the
    /// campaign benchmarks do — boots and captures goldens only once.
    pub fn with_threads(&self, threads: usize) -> Experiment {
        Experiment {
            config: ExperimentConfig { threads, ..self.config.clone() },
            image: self.image.clone(),
            files: self.files.clone(),
            profile: self.profile.clone(),
            target_functions: self.target_functions.clone(),
            shared_base: self.shared_base.clone(),
        }
    }

    /// The function set injected by a campaign. All campaigns target the
    /// core functions; following the paper's footnote 2 ("the total
    /// number of functions injected in a given campaign is much larger,
    /// and different for each campaign"), campaign A additionally covers
    /// every *profiled* function of the four subsystems, while B and C
    /// cover every function of the four subsystems (branches are sparse,
    /// so breadth is needed for statistics).
    pub fn functions_for(&self, campaign: Campaign) -> Vec<String> {
        let mut set: Vec<String> = self.target_functions.clone();
        let push = |name: &str, set: &mut Vec<String>| {
            if !set.iter().any(|f| f == name) {
                set.push(name.to_string());
            }
        };
        match campaign {
            Campaign::A => {
                for f in &self.profile.functions {
                    if INJECTED_SUBSYSTEMS.contains(&f.subsystem.as_str()) {
                        push(&f.name, &mut set);
                    }
                }
            }
            Campaign::B | Campaign::C => {
                for sym in self.image.program.symbols.functions() {
                    if let Some(sub) = sym.subsystem.as_deref() {
                        if INJECTED_SUBSYSTEMS.contains(&sub) {
                            push(&sym.name, &mut set);
                        }
                    }
                }
            }
        }
        set
    }

    /// Plans a campaign's targets over [`Experiment::functions_for`].
    pub fn plan(&self, campaign: Campaign) -> Vec<InjectionTarget> {
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ (campaign.letter() as u64) << 32);
        let mut out = Vec::new();
        for f in self.functions_for(campaign) {
            let mut t = plan_function(&self.image, &f, campaign, &mut rng);
            if let Some(cap) = self.config.max_per_function {
                t.truncate(cap);
            }
            out.extend(t);
        }
        out
    }

    /// Picks the workload (run mode) for a target: the workload that
    /// activates the target's function the most in the profile.
    pub fn mode_for(&self, target: &InjectionTarget) -> u32 {
        self.profile.best_workload_for(&target.function).unwrap_or(0)
    }

    /// Builds an injection rig (one per worker thread).
    ///
    /// With [`ExperimentConfig::memoize`] on (the default) this forks
    /// the shared post-boot base — booting it first if this is the
    /// first rig — so the kernel boots once per experiment and each
    /// golden run executes once campaign-wide. With it off, every call
    /// boots and captures privately (the reference path). Either way a
    /// fresh, uncontaminated rig is returned: the supervisor's
    /// rebuild-on-panic path calls this and must never inherit state
    /// from the rig it is replacing.
    ///
    /// # Errors
    ///
    /// Propagates boot/golden-run failures as a string.
    pub fn make_rig(&self) -> Result<InjectorRig, String> {
        if self.config.memoize {
            let shared = self.shared_base()?;
            InjectorRig::fork(&shared).map_err(|e| e.to_string())
        } else {
            InjectorRig::new(
                self.image.clone(),
                &self.files,
                self.config.suite.n_modes(),
                self.config.rig,
            )
            .map_err(|e| e.to_string())
        }
    }

    /// The shared post-boot base, booting it on first call. Concurrent
    /// first calls block until the one boot finishes; failures are
    /// memoized.
    ///
    /// # Errors
    ///
    /// Propagates boot failures as a string.
    pub fn shared_base(&self) -> Result<Arc<RigShared>, String> {
        self.shared_base
            .get_or_init(|| {
                RigShared::boot(
                    self.image.clone(),
                    &self.files,
                    self.config.suite.n_modes(),
                    self.config.rig,
                )
                .map_err(|e| e.to_string())
            })
            .clone()
    }

    /// Number of golden captures the shared base actually executed so
    /// far — the memoization test pins this to the number of workload
    /// modes regardless of worker count. `None` when the base has not
    /// been booted (memoization off, or no rig made yet).
    pub fn golden_captures(&self) -> Option<u64> {
        let shared = self.shared_base.get()?.as_ref().ok()?;
        Some(shared.store().captures())
    }

    /// Runs one campaign, fanning the planned targets across
    /// supervised worker threads (each with its own machine + rig).
    ///
    /// This delegates to [`crate::supervisor::run_campaign_supervised`]
    /// with the default [`SupervisorConfig`]: panicking runs are
    /// contained and retried on a fresh rig (persistent offenders
    /// become [`kfi_injector::Outcome::RigFault`] records), a dead
    /// worker's jobs flow to the survivors, and the campaign always
    /// completes with one record per planned target. Records are in
    /// plan order and metrics totals are identical for any thread
    /// count.
    ///
    /// [`SupervisorConfig`]: crate::supervisor::SupervisorConfig
    pub fn run_campaign(&self, campaign: Campaign) -> CampaignResult {
        let cfg = crate::supervisor::SupervisorConfig::default();
        crate::supervisor::run_campaign_supervised(self, campaign, &cfg)
            .expect("supervisor without a journal cannot fail")
            .result
    }

    /// Runs all three campaigns.
    pub fn run_all(&self) -> StudyResult {
        let mut campaigns = BTreeMap::new();
        for c in [Campaign::A, Campaign::B, Campaign::C] {
            campaigns.insert(c.letter(), self.run_campaign(c));
        }
        StudyResult { campaigns, seed: self.config.seed }
    }
}

impl CampaignResult {
    /// Per-subsystem outcome tallies (the Figure 4 tables).
    pub fn tallies(&self) -> BTreeMap<String, stats::OutcomeTally> {
        stats::tally_by_subsystem(&self.records)
    }

    /// Overall tally.
    pub fn total(&self) -> stats::OutcomeTally {
        stats::tally(&self.records)
    }
}
