//! The campaign supervisor: panic-isolated workers, journaled
//! checkpoint/resume, poison-run quarantine and a wall-clock watchdog.
//!
//! The plain experiment loop trusts every run: a worker panic used to
//! abort the whole campaign (`join().expect("worker panicked")`), a
//! wedged simulator run could stall a worker forever, and an
//! interrupted campaign lost everything. The supervisor closes those
//! holes without disturbing the determinism contract — a supervised
//! campaign's records and merged metrics are bit-identical for any
//! worker count, and a campaign interrupted at any point and resumed
//! from its journal produces the same dataset as an uninterrupted one.
//!
//! * **Panic isolation** — each run executes under
//!   [`std::panic::catch_unwind`]. A panicking run poisons its rig, so
//!   the worker discards it, rebuilds a fresh one from scratch, and
//!   retries; a persistent offender is recorded as
//!   [`Outcome::RigFault`] instead of silently disappearing. A worker
//!   that cannot rebuild its rig pushes its job back and dies; the
//!   shared queue redistributes its remaining work to the survivors
//!   (or, if every worker dies, to a main-thread fallback).
//! * **Journal** — completed runs (record + per-run metrics delta) are
//!   appended to a CRC-framed journal ([`crate::journal`]); `--resume`
//!   replays the intact prefix and only executes what's missing.
//!   Frames pass through a reorder buffer so they land in plan-index
//!   order regardless of which worker finished first: the journal's
//!   bytes are identical for any worker count.
//! * **Quarantine** — runs that panic or trip the machine sanitizer are
//!   retried up to [`SupervisorConfig::max_retries`] times on a fresh
//!   rig; persistent offenders get a minimal-repro artifact written to
//!   the quarantine directory and are surfaced in the report.
//! * **Watchdog** — a supervisor thread flags runs exceeding the
//!   wall-clock budget via the machine's cooperative abort flag,
//!   degrading simulator-level livelock (which the in-guest cycle
//!   budget cannot see) into an ordinary hang-classified record.
//! * **Batched scheduling** — workers claim jobs in adaptive chunks
//!   (one queue-lock round-trip per chunk, chunks shrinking toward the
//!   campaign tail so the last jobs still load-balance) and report
//!   completions one chunk at a time through a single
//!   order-lock/journal-drain/done-lock round-trip. Granularity never
//!   reaches the dataset: the reorder buffer emits journal frames in
//!   plan-index order whatever the batch size, so bytes stay identical
//!   to the one-at-a-time scheduler's.

use crate::experiment::{CampaignResult, Experiment, StudyResult};
use crate::journal::{Journal, JournalEntry};
use kfi_injector::{Campaign, InjectionTarget, InjectorRig, Outcome, RunRecord};
use kfi_trace::{outcome as trace_outcome, Metrics};
use std::collections::{BTreeMap, BTreeSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Test-only fault injection into the *harness*: makes the listed job
/// indices panic inside the worker, exercising the containment path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum PanicInjection {
    /// No injected panics (the production setting).
    #[default]
    None,
    /// Panic on the first attempt of each listed job; retries succeed.
    Transient(BTreeSet<usize>),
    /// Panic on every attempt of each listed job; the supervisor must
    /// quarantine them as [`Outcome::RigFault`].
    Persistent(BTreeSet<usize>),
}

impl PanicInjection {
    fn should_panic(&self, index: usize, attempt: usize) -> bool {
        match self {
            PanicInjection::None => false,
            PanicInjection::Transient(set) => attempt == 0 && set.contains(&index),
            PanicInjection::Persistent(set) => set.contains(&index),
        }
    }
}

/// Supervisor policy.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Retries (each on a fresh rig) granted to a run that panicked or
    /// tripped the sanitizer, beyond its first attempt.
    pub max_retries: usize,
    /// Wall-clock budget per run; `None` disables the watchdog. Runs
    /// exceeding it are aborted via the machine's cooperative abort
    /// flag and classify as [`Outcome::Hang`].
    pub wall_budget: Option<Duration>,
    /// Directory for minimal-repro artifacts of quarantined runs.
    pub quarantine_dir: Option<PathBuf>,
    /// Journal path; every completed run is checkpointed here.
    pub journal: Option<PathBuf>,
    /// Resume from an existing journal at [`SupervisorConfig::journal`]
    /// instead of truncating it.
    pub resume: bool,
    /// Harness-fault injection (tests only).
    pub inject_panic: PanicInjection,
}

impl Default for SupervisorConfig {
    fn default() -> SupervisorConfig {
        SupervisorConfig {
            max_retries: 2,
            wall_budget: None,
            quarantine_dir: None,
            journal: None,
            resume: false,
            inject_panic: PanicInjection::None,
        }
    }
}

/// One quarantined run, surfaced in the report.
#[derive(Debug, Clone)]
pub struct QuarantineReport {
    /// Campaign letter.
    pub campaign: char,
    /// Job index within the campaign plan.
    pub index: usize,
    /// Target function.
    pub function: String,
    /// Why the run was quarantined.
    pub reason: String,
    /// Artifact path, when a quarantine directory was configured and
    /// the write succeeded.
    pub path: Option<PathBuf>,
}

/// What the supervisor did beyond the dataset itself. Everything here
/// is reporting-only: none of it feeds the CSV dataset, which must stay
/// independent of interruptions and worker scheduling.
#[derive(Debug, Clone, Default)]
pub struct SupervisorReport {
    /// Runs skipped because the journal already had them.
    pub resumed_runs: usize,
    /// Journal fsync batches performed.
    pub journal_flushes: u64,
    /// Worker panics caught.
    pub rig_panics: u64,
    /// Retries performed (fresh rig each).
    pub retries: u64,
    /// Runs quarantined as persistent offenders.
    pub quarantined_runs: u64,
    /// Runs the wall-clock watchdog aborted.
    pub watchdog_fired: u64,
    /// Workers that died (rig rebuild failed) with their jobs
    /// redistributed.
    pub workers_lost: usize,
    /// Per-run quarantine details.
    pub quarantined: Vec<QuarantineReport>,
}

impl SupervisorReport {
    fn absorb_campaign(&mut self, m: &Metrics) {
        self.rig_panics += m.rig_panics;
        self.retries += m.run_retries;
        self.quarantined_runs += m.quarantined_runs;
        self.watchdog_fired += m.wall_watchdog_fired;
    }
}

/// A supervised campaign: the ordinary result plus the supervisor's
/// report.
pub struct SupervisedCampaign {
    /// The campaign result (same shape as the unsupervised path).
    pub result: CampaignResult,
    /// What the supervisor had to do.
    pub report: SupervisorReport,
}

/// A supervised full study.
pub struct SupervisedStudy {
    /// The study result (same shape as [`Experiment::run_all`]).
    pub study: StudyResult,
    /// Report aggregated across the three campaigns.
    pub report: SupervisorReport,
}

/// One planned unit of work.
#[derive(Clone)]
pub(crate) struct Job {
    pub(crate) index: usize,
    pub(crate) target: InjectionTarget,
    pub(crate) mode: u32,
}

/// Per-worker watchdog slot. The watchdog sets `abort` only while
/// holding `started`'s lock and seeing a running run; the worker clears
/// both under the same lock, so a flag raised for run N can never leak
/// into run N+1.
pub(crate) struct WatchSlot {
    pub(crate) started: Mutex<Option<Instant>>,
    pub(crate) abort: Arc<AtomicBool>,
}

impl WatchSlot {
    pub(crate) fn new() -> WatchSlot {
        WatchSlot { started: Mutex::new(None), abort: Arc::new(AtomicBool::new(false)) }
    }
}

/// How one job finished.
pub(crate) struct JobDone {
    pub(crate) index: usize,
    pub(crate) record: RunRecord,
    /// Final-attempt rig metrics delta + this job's supervisor counters.
    pub(crate) metrics: Metrics,
    pub(crate) quarantine: Option<QuarantineReport>,
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

pub(crate) fn rig_fault_record(job: &Job, msg: &str) -> RunRecord {
    RunRecord {
        target: job.target.clone(),
        mode: job.mode,
        outcome: Outcome::RigFault(msg.to_string()),
        activation_tsc: None,
        run_cycles: 0,
        sanitizer_violations: 0,
    }
}

/// Writes a minimal-repro artifact for a quarantined run. Best-effort:
/// a failed write degrades to a report entry without a path.
fn write_quarantine_artifact(
    dir: &std::path::Path,
    exp: &Experiment,
    job: &Job,
    attempts: usize,
    reason: &str,
    rig: Option<&mut InjectorRig>,
) -> Option<PathBuf> {
    std::fs::create_dir_all(dir).ok()?;
    let t = &job.target;
    let name = format!("{}{:05}_{}.txt", t.campaign.letter(), job.index, t.function);
    let path = dir.join(name);
    let mut text = String::new();
    text.push_str("kfi quarantine artifact\n");
    text.push_str(&format!("campaign: {}\njob index: {}\n", t.campaign.letter(), job.index));
    text.push_str(&format!("function: {} (subsystem {})\n", t.function, t.subsystem));
    text.push_str(&format!(
        "injection: addr {:#x} byte {} mask {:#04x} (insn len {}, branch: {})\n",
        t.insn_addr, t.byte_index, t.bit_mask, t.insn_len, t.is_branch
    ));
    text.push_str(&format!("mode: {}\nseed: {}\n", job.mode, exp.config.seed));
    text.push_str(&format!("attempts: {}\nreason: {}\n", attempts, reason));
    match rig {
        Some(rig) => match kfi_dump::capture(rig.machine_mut(), &exp.image) {
            Some(dump) => {
                text.push_str("\n--- crash capture ---\n");
                text.push_str(&dump.format(&exp.image));
            }
            None => text.push_str("\n(no crash cause reported by the guest)\n"),
        },
        None => text.push_str("\n(rig poisoned; no machine state to capture)\n"),
    }
    std::fs::write(&path, text).ok()?;
    Some(path)
}

/// Executes one job to a final record, retrying panics and
/// sanitizer-poisoned runs on a fresh rig. Returns `Err(())` when the
/// rig died and could not be rebuilt — the job goes back to the queue.
pub(crate) fn process_job(
    exp: &Experiment,
    cfg: &SupervisorConfig,
    job: &Job,
    rig: &mut Option<InjectorRig>,
    slot: &WatchSlot,
) -> Result<JobDone, ()> {
    let mut sup = Metrics::default();
    let mut attempt = 0usize;
    loop {
        if rig.is_none() {
            match exp.make_rig() {
                Ok(mut fresh) => {
                    if cfg.wall_budget.is_some() {
                        fresh.machine_mut().set_abort_flag(Some(slot.abort.clone()));
                    }
                    *rig = Some(fresh);
                }
                Err(_) => return Err(()),
            }
        }
        let r = rig.as_mut().expect("rig present");
        {
            let mut s = slot.started.lock().expect("watch slot");
            slot.abort.store(false, Ordering::SeqCst);
            *s = cfg.wall_budget.map(|_| Instant::now());
        }
        let result = catch_unwind(AssertUnwindSafe(|| {
            if cfg.inject_panic.should_panic(job.index, attempt) {
                panic!("injected worker panic (job {}, attempt {attempt})", job.index);
            }
            r.run_one(&job.target, job.mode)
        }));
        let watchdog_fired = {
            let mut s = slot.started.lock().expect("watch slot");
            *s = None;
            slot.abort.swap(false, Ordering::SeqCst)
        };
        if watchdog_fired {
            sup.wall_watchdog_fired += 1;
        }
        match result {
            Ok(record) => {
                let mut delta = rig.as_mut().expect("rig present").take_metrics();
                if record.sanitizer_violations > 0 && attempt < cfg.max_retries {
                    // Poisoned run: retry on a fresh rig.
                    sup.run_retries += 1;
                    *rig = None;
                    attempt += 1;
                    continue;
                }
                let quarantine = if record.sanitizer_violations > 0 {
                    sup.quarantined_runs += 1;
                    let reason = format!(
                        "sanitizer violations persisted across {} attempts ({} in final run)",
                        attempt + 1,
                        record.sanitizer_violations
                    );
                    let path = cfg.quarantine_dir.as_deref().and_then(|d| {
                        write_quarantine_artifact(d, exp, job, attempt + 1, &reason, rig.as_mut())
                    });
                    Some(QuarantineReport {
                        campaign: job.target.campaign.letter(),
                        index: job.index,
                        function: job.target.function.clone(),
                        reason,
                        path,
                    })
                } else {
                    None
                };
                delta.merge(&sup);
                return Ok(JobDone { index: job.index, record, metrics: delta, quarantine });
            }
            Err(payload) => {
                let msg = panic_message(payload.as_ref());
                sup.rig_panics += 1;
                // The rig is poisoned — never reuse it after a panic.
                *rig = None;
                if attempt < cfg.max_retries {
                    sup.run_retries += 1;
                    attempt += 1;
                    continue;
                }
                // Persistent offender: record the loss and quarantine.
                sup.quarantined_runs += 1;
                sup.runs += 1;
                sup.record_outcome(trace_outcome::RIG_FAULT);
                let reason = format!("panicked on all {} attempts: {msg}", attempt + 1);
                let path = cfg.quarantine_dir.as_deref().and_then(|d| {
                    write_quarantine_artifact(d, exp, job, attempt + 1, &reason, None)
                });
                let quarantine = Some(QuarantineReport {
                    campaign: job.target.campaign.letter(),
                    index: job.index,
                    function: job.target.function.clone(),
                    reason,
                    path,
                });
                return Ok(JobDone {
                    index: job.index,
                    record: rig_fault_record(job, &msg),
                    metrics: sup,
                    quarantine,
                });
            }
        }
    }
}

/// Reorder buffer in front of the journal: frames are appended in
/// plan-index order, not worker-completion order, so the journal's
/// bytes are identical for any worker count (and diffable between
/// runs). Entries completed ahead of a still-running earlier job are
/// held here until the gap closes; the window is usually the worker
/// count, though one long run can briefly hold back many completions.
pub(crate) struct JournalOrder {
    /// Next plan index the journal is waiting for.
    next: usize,
    /// Completed-but-early entries, keyed by plan index.
    pub(crate) held: BTreeMap<usize, JournalEntry>,
    /// Plan indices already journaled by a previous (resumed) session;
    /// `next` skips over these.
    skip: BTreeSet<usize>,
}

impl JournalOrder {
    pub(crate) fn new(skip: BTreeSet<usize>) -> JournalOrder {
        JournalOrder { next: 0, held: BTreeMap::new(), skip }
    }

    /// Appends every entry that is now contiguous with the journal tail.
    pub(crate) fn drain(&mut self, j: &mut Journal) {
        loop {
            if self.skip.remove(&self.next) {
                self.next += 1;
                continue;
            }
            match self.held.remove(&self.next) {
                Some(e) => {
                    // Journal I/O failure must not kill the campaign:
                    // the run is already in memory; only resumability
                    // degrades.
                    let _ = j.append(&e);
                    self.next += 1;
                }
                None => break,
            }
        }
    }
}

/// Upper bound on jobs claimed per queue-lock acquisition (and on
/// completions buffered per report flush). Small enough that an
/// interrupted campaign re-runs at most a handful of unjournaled runs
/// on resume, large enough to amortize the claim/report locking that
/// was one lock round-trip per job.
pub(crate) const CLAIM_BATCH_MAX: usize = 8;

/// Claims a chunk of jobs under one queue-lock acquisition. The chunk
/// shrinks as the queue drains (`len / 2·workers`, floor 1) so the tail
/// of a campaign still load-balances: the last few jobs are handed out
/// one at a time instead of letting one worker hoard them.
fn claim_batch(
    queue: &Mutex<std::collections::VecDeque<Job>>,
    threads: usize,
) -> std::collections::VecDeque<Job> {
    let mut q = queue.lock().expect("queue lock");
    let take = (q.len() / (2 * threads.max(1))).clamp(1, CLAIM_BATCH_MAX);
    let mut out = std::collections::VecDeque::with_capacity(take);
    for _ in 0..take {
        match q.pop_front() {
            Some(j) => out.push_back(j),
            None => break,
        }
    }
    out
}

/// Shared mutable campaign state.
struct Shared<'a> {
    queue: Mutex<std::collections::VecDeque<Job>>,
    done: Mutex<Vec<JobDone>>,
    journal: Option<&'a Mutex<Journal>>,
    order: Mutex<JournalOrder>,
}

impl Shared<'_> {
    fn finish(&self, done: JobDone) {
        self.finish_batch(vec![done]);
    }

    /// Reports a chunk of completions under one order-lock + one
    /// journal drain + one done-lock, instead of one round-trip of
    /// each per job. Determinism is untouched: the reorder buffer
    /// already emits journal frames in plan-index order whatever the
    /// arrival granularity, and the final dataset is sorted by index.
    fn finish_batch(&self, batch: Vec<JobDone>) {
        if batch.is_empty() {
            return;
        }
        if let Some(j) = self.journal {
            let mut order = self.order.lock().expect("journal order lock");
            for done in &batch {
                let entry = JournalEntry {
                    campaign: done.record.target.campaign.letter(),
                    index: done.index,
                    record: done.record.clone(),
                    metrics: done.metrics.clone(),
                };
                order.held.insert(done.index, entry);
            }
            order.drain(&mut j.lock().expect("journal lock"));
        }
        self.done.lock().expect("done lock").extend(batch);
    }
}

/// One worker: drains the queue in adaptive batches until empty or its
/// rig becomes unbuildable (then its unprocessed jobs flow back to the
/// survivors).
fn worker_loop(
    exp: &Experiment,
    cfg: &SupervisorConfig,
    shared: &Shared<'_>,
    slot: &WatchSlot,
    threads: usize,
) -> bool {
    let mut rig: Option<InjectorRig> = None;
    loop {
        let mut local = claim_batch(&shared.queue, threads);
        if local.is_empty() {
            return true;
        }
        let mut pending: Vec<JobDone> = Vec::with_capacity(local.len());
        while let Some(job) = local.pop_front() {
            match process_job(exp, cfg, &job, &mut rig, slot) {
                Ok(done) => pending.push(done),
                Err(()) => {
                    // Rig unbuildable: give back the failed job and the
                    // whole unprocessed remainder (original order),
                    // flush what did complete, and die.
                    let mut q = shared.queue.lock().expect("queue lock");
                    for j in local.into_iter().rev() {
                        q.push_front(j);
                    }
                    q.push_front(job);
                    drop(q);
                    shared.finish_batch(pending);
                    return false;
                }
            }
        }
        shared.finish_batch(pending);
    }
}

/// Runs one campaign under supervision.
///
/// With a default [`SupervisorConfig`] this is behaviorally identical
/// to the plain experiment loop on healthy runs (and is what
/// [`Experiment::run_campaign`] delegates to).
///
/// # Errors
///
/// Journal open/read failures (bad header, seed mismatch, I/O).
pub fn run_campaign_supervised(
    exp: &Experiment,
    campaign: Campaign,
    cfg: &SupervisorConfig,
) -> Result<SupervisedCampaign, String> {
    let (journal, resumed) = open_journal(exp, cfg)?;
    let journal_mutex = journal.map(Mutex::new);
    let out = run_campaign_inner(exp, campaign, cfg, journal_mutex.as_ref(), &resumed);
    let flushes = match journal_mutex {
        Some(m) => {
            let mut j = m.into_inner().expect("journal lock");
            j.sync().map_err(|e| e.to_string())?;
            j.flushes
        }
        None => 0,
    };
    let mut out = out;
    out.report.journal_flushes = flushes;
    Ok(out)
}

/// Runs all three campaigns under supervision, sharing one journal.
///
/// # Errors
///
/// Journal open/read failures (bad header, seed mismatch, I/O).
pub fn run_study_supervised(
    exp: &Experiment,
    cfg: &SupervisorConfig,
) -> Result<SupervisedStudy, String> {
    let (journal, resumed) = open_journal(exp, cfg)?;
    let journal_mutex = journal.map(Mutex::new);
    let mut campaigns = BTreeMap::new();
    let mut report = SupervisorReport::default();
    for c in [Campaign::A, Campaign::B, Campaign::C] {
        let out = run_campaign_inner(exp, c, cfg, journal_mutex.as_ref(), &resumed);
        report.resumed_runs += out.report.resumed_runs;
        report.workers_lost += out.report.workers_lost;
        report.quarantined.extend(out.report.quarantined);
        report.absorb_campaign(&out.result.metrics);
        campaigns.insert(c.letter(), out.result);
        if let Some(m) = journal_mutex.as_ref() {
            // Checkpoint the campaign boundary.
            m.lock().expect("journal lock").sync().map_err(|e| e.to_string())?;
        }
    }
    if let Some(m) = journal_mutex {
        let mut j = m.into_inner().expect("journal lock");
        j.sync().map_err(|e| e.to_string())?;
        report.journal_flushes = j.flushes;
    }
    Ok(SupervisedStudy { study: StudyResult { campaigns, seed: exp.config.seed }, report })
}

/// Runs an explicit `(target, mode)` plan under supervision — the
/// campaign-matrix entry point. The plan is taken as given (no
/// profile-driven target selection or mode choice), but everything
/// else is the supervised campaign machinery: panic-isolated workers,
/// the plan-index reorder buffer in front of the journal, watchdog,
/// quarantine, and resume against [`SupervisorConfig::journal`] (a
/// journaled entry only replays when it matches the plan's target and
/// mode exactly).
///
/// # Errors
///
/// Journal open/read failures (bad header, seed mismatch, I/O).
pub fn run_plan_supervised(
    exp: &Experiment,
    campaign: Campaign,
    plan: Vec<(InjectionTarget, u32)>,
    cfg: &SupervisorConfig,
) -> Result<SupervisedCampaign, String> {
    let (journal, resumed) = open_journal(exp, cfg)?;
    let journal_mutex = journal.map(Mutex::new);
    let mut out = run_plan_inner(exp, campaign, cfg, journal_mutex.as_ref(), &resumed, plan);
    if let Some(m) = journal_mutex {
        let mut j = m.into_inner().expect("journal lock");
        j.sync().map_err(|e| e.to_string())?;
        out.report.journal_flushes = j.flushes;
    }
    Ok(out)
}

/// Opens/creates the journal per config and reads any resumable
/// entries, grouped by campaign letter.
pub(crate) fn open_journal(
    exp: &Experiment,
    cfg: &SupervisorConfig,
) -> Result<(Option<Journal>, BTreeMap<char, BTreeMap<usize, JournalEntry>>), String> {
    let Some(path) = &cfg.journal else {
        return Ok((None, BTreeMap::new()));
    };
    let seed = exp.config.seed;
    if cfg.resume && path.exists() {
        // `resume` truncates any torn tail before reopening for append,
        // so re-run frames stay reachable by the next resume.
        let (entries, journal) = crate::journal::resume(path, seed).map_err(|e| e.to_string())?;
        let mut by_campaign: BTreeMap<char, BTreeMap<usize, JournalEntry>> = BTreeMap::new();
        for e in entries {
            by_campaign.entry(e.campaign).or_default().insert(e.index, e);
        }
        Ok((Some(journal), by_campaign))
    } else {
        let journal = Journal::create(path, seed).map_err(|e| e.to_string())?;
        Ok((Some(journal), BTreeMap::new()))
    }
}

fn run_campaign_inner(
    exp: &Experiment,
    campaign: Campaign,
    cfg: &SupervisorConfig,
    journal: Option<&Mutex<Journal>>,
    resumed: &BTreeMap<char, BTreeMap<usize, JournalEntry>>,
) -> SupervisedCampaign {
    let plan: Vec<(InjectionTarget, u32)> = exp
        .plan(campaign)
        .into_iter()
        .map(|t| {
            let mode = exp.mode_for(&t);
            (t, mode)
        })
        .collect();
    run_plan_inner(exp, campaign, cfg, journal, resumed, plan)
}

fn run_plan_inner(
    exp: &Experiment,
    campaign: Campaign,
    cfg: &SupervisorConfig,
    journal: Option<&Mutex<Journal>>,
    resumed: &BTreeMap<char, BTreeMap<usize, JournalEntry>>,
    plan: Vec<(InjectionTarget, u32)>,
) -> SupervisedCampaign {
    let functions_injected = {
        let mut fs: Vec<&str> = plan.iter().map(|(t, _)| t.function.as_str()).collect();
        fs.sort_unstable();
        fs.dedup();
        fs.len()
    };

    // Split the plan into journaled (skip) and still-to-run jobs. A
    // journaled entry only counts when it matches the plan exactly —
    // same target, same mode — so a stale or foreign journal can never
    // smuggle records into the dataset.
    let empty = BTreeMap::new();
    let journaled = resumed.get(&campaign.letter()).unwrap_or(&empty);
    let mut replayed: Vec<JobDone> = Vec::new();
    let mut jobs: std::collections::VecDeque<Job> = std::collections::VecDeque::new();
    let mut skip: BTreeSet<usize> = BTreeSet::new();
    for (index, (target, mode)) in plan.into_iter().enumerate() {
        match journaled.get(&index) {
            Some(e) if e.record.target == target && e.record.mode == mode => {
                skip.insert(index);
                replayed.push(JobDone {
                    index,
                    record: e.record.clone(),
                    metrics: e.metrics.clone(),
                    quarantine: None,
                });
            }
            _ => jobs.push_back(Job { index, target, mode }),
        }
    }
    let resumed_runs = replayed.len();

    let shared = Shared {
        queue: Mutex::new(jobs),
        done: Mutex::new(replayed),
        journal,
        order: Mutex::new(JournalOrder::new(skip)),
    };
    let threads = exp.config.threads.max(1);
    let slots: Vec<WatchSlot> = (0..threads).map(|_| WatchSlot::new()).collect();
    let watchdog_stop = AtomicBool::new(false);
    let mut workers_lost = 0usize;

    std::thread::scope(|s| {
        let handles: Vec<_> = slots
            .iter()
            .map(|slot| s.spawn(|| worker_loop(exp, cfg, &shared, slot, threads)))
            .collect();
        let slots = &slots;
        let watchdog_stop = &watchdog_stop;
        let watchdog = cfg.wall_budget.map(|budget| {
            s.spawn(move || {
                while !watchdog_stop.load(Ordering::SeqCst) {
                    for slot in slots {
                        let started = slot.started.lock().expect("watch slot");
                        if let Some(t0) = *started {
                            if t0.elapsed() >= budget {
                                slot.abort.store(true, Ordering::SeqCst);
                            }
                        }
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            })
        });
        for h in handles {
            // Worker bodies catch their own panics; a panic escaping
            // here would be a supervisor bug, not a run failure.
            if !h.join().expect("supervisor worker") {
                workers_lost += 1;
            }
        }
        watchdog_stop.store(true, Ordering::SeqCst);
        if let Some(w) = watchdog {
            let _ = w.join();
        }
    });

    // Every worker died with jobs still queued: finish on this thread
    // so the campaign always completes. If even this thread cannot
    // build a rig, the leftovers become RigFault records — the dataset
    // stays complete and the failure is visible, not fatal.
    let fallback_slot = WatchSlot::new();
    let mut fallback_rig: Option<InjectorRig> = None;
    loop {
        let job = match shared.queue.lock().expect("queue lock").pop_front() {
            Some(j) => j,
            None => break,
        };
        match process_job(exp, cfg, &job, &mut fallback_rig, &fallback_slot) {
            Ok(done) => shared.finish(done),
            Err(()) => {
                let mut sup = Metrics::default();
                sup.runs += 1;
                sup.record_outcome(trace_outcome::RIG_FAULT);
                shared.finish(JobDone {
                    index: job.index,
                    record: rig_fault_record(&job, "rig could not be built on any worker"),
                    metrics: sup,
                    quarantine: None,
                });
            }
        }
    }

    let mut done = shared.done.into_inner().expect("done lock");
    done.sort_by_key(|d| d.index);
    let mut metrics = Metrics::default();
    let mut records = Vec::with_capacity(done.len());
    let mut quarantined = Vec::new();
    for d in done {
        metrics.merge(&d.metrics);
        records.push(d.record);
        if let Some(q) = d.quarantine {
            quarantined.push(q);
        }
    }
    let mut report =
        SupervisorReport { resumed_runs, workers_lost, quarantined, ..SupervisorReport::default() };
    report.absorb_campaign(&metrics);
    SupervisedCampaign {
        result: CampaignResult { campaign, records, functions_injected, metrics },
        report,
    }
}
