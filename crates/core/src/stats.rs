//! Statistics over run records: the data behind Figures 4, 6, 7 and 8
//! and Tables 1 and 5.

use kfi_injector::{Outcome, RunRecord, Severity};
use std::collections::BTreeMap;

/// Outcome tallies for a set of runs (one row of a Figure 4 table).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OutcomeTally {
    /// Errors injected.
    pub injected: usize,
    /// Errors activated (corrupted instruction executed).
    pub activated: usize,
    /// Activated with no visible effect.
    pub not_manifested: usize,
    /// Fail-silence violations.
    pub fsv: usize,
    /// Kernel crashes.
    pub crash: usize,
    /// Hangs (watchdog).
    pub hang: usize,
    /// Rig faults (the harness failed, not the guest): excluded from
    /// activation statistics, surfaced so lost runs are never silent.
    pub rig_fault: usize,
}

impl OutcomeTally {
    /// Adds one record.
    pub fn add(&mut self, r: &RunRecord) {
        self.injected += 1;
        if r.outcome.activated() {
            self.activated += 1;
        }
        match &r.outcome {
            Outcome::NotManifested => self.not_manifested += 1,
            Outcome::FailSilenceViolation(_) => self.fsv += 1,
            Outcome::Crash(_) => self.crash += 1,
            Outcome::Hang => self.hang += 1,
            Outcome::RigFault(_) => self.rig_fault += 1,
            Outcome::NotActivated => {}
        }
    }

    /// Crash + hang (the combined Figure 4 column).
    pub fn crash_or_hang(&self) -> usize {
        self.crash + self.hang
    }

    /// Activated / injected.
    pub fn activation_rate(&self) -> f64 {
        pct(self.activated, self.injected)
    }

    /// Percentage helpers with respect to activated errors.
    pub fn pct_not_manifested(&self) -> f64 {
        pct(self.not_manifested, self.activated)
    }
    /// FSV percentage of activated errors.
    pub fn pct_fsv(&self) -> f64 {
        pct(self.fsv, self.activated)
    }
    /// Crash/hang percentage of activated errors.
    pub fn pct_crash_or_hang(&self) -> f64 {
        pct(self.crash_or_hang(), self.activated)
    }
}

fn pct(n: usize, d: usize) -> f64 {
    if d == 0 {
        0.0
    } else {
        100.0 * n as f64 / d as f64
    }
}

/// Tallies all records.
pub fn tally(records: &[RunRecord]) -> OutcomeTally {
    let mut t = OutcomeTally::default();
    for r in records {
        t.add(r);
    }
    t
}

/// Tallies grouped by *injected* subsystem.
pub fn tally_by_subsystem(records: &[RunRecord]) -> BTreeMap<String, OutcomeTally> {
    let mut map: BTreeMap<String, OutcomeTally> = BTreeMap::new();
    for r in records {
        map.entry(r.target.subsystem.clone()).or_default().add(r);
    }
    map
}

/// Crash-cause distribution (Figure 6): cause code → count, over all
/// crash outcomes.
pub fn crash_causes(records: &[RunRecord]) -> BTreeMap<u32, usize> {
    let mut map = BTreeMap::new();
    for r in records {
        if let Outcome::Crash(info) = &r.outcome {
            *map.entry(info.cause).or_insert(0) += 1;
        }
    }
    map
}

/// The share of all crashes covered by the paper's four major causes
/// (NULL pointer, paging request, invalid opcode, GPF).
pub fn four_major_causes_share(records: &[RunRecord]) -> f64 {
    use kfi_kernel::layout::causes as c;
    let causes = crash_causes(records);
    let total: usize = causes.values().sum();
    let four: usize = [c::NULL_POINTER, c::PAGING_REQUEST, c::INVALID_OP, c::GPF]
        .iter()
        .filter_map(|k| causes.get(k))
        .sum();
    pct(four, total)
}

// The bucket boundaries live in `kfi_trace::latency` — the single
// definition shared with the rig's metrics-side histogram — and are
// re-exported here so record-level and metrics-level latency figures
// can never drift apart.
pub use kfi_trace::latency::{latency_bucket, LATENCY_BUCKETS};

/// Latency histogram over crashes, optionally filtered by injected
/// subsystem.
pub fn latency_histogram(records: &[RunRecord], subsystem: Option<&str>) -> [usize; 6] {
    let mut h = [0usize; 6];
    for r in records {
        if let Some(s) = subsystem {
            if r.target.subsystem != s {
                continue;
            }
        }
        if let Outcome::Crash(info) = &r.outcome {
            h[latency_bucket(info.latency)] += 1;
        }
    }
    h
}

/// One subsystem's error-propagation profile (a Figure 8 graph):
/// where its injected errors crashed, and the crash causes at each
/// destination.
#[derive(Debug, Clone, Default)]
pub struct Propagation {
    /// Total crashes from errors injected into this subsystem.
    pub total_crashes: usize,
    /// Destination subsystem → crash count.
    pub to: BTreeMap<String, usize>,
    /// Destination subsystem → (cause → count).
    pub causes_at: BTreeMap<String, BTreeMap<u32, usize>>,
}

impl Propagation {
    /// Percentage of crashes that stayed in the injected subsystem.
    pub fn self_share(&self, subsystem: &str) -> f64 {
        pct(self.to.get(subsystem).copied().unwrap_or(0), self.total_crashes)
    }

    /// Percentage of crashes that escaped to other subsystems.
    pub fn propagation_share(&self, subsystem: &str) -> f64 {
        100.0 - self.self_share(subsystem)
    }
}

/// Builds the propagation profile for errors injected into `from`.
pub fn propagation(records: &[RunRecord], from: &str) -> Propagation {
    let mut p = Propagation::default();
    for r in records {
        if r.target.subsystem != from {
            continue;
        }
        if let Outcome::Crash(info) = &r.outcome {
            p.total_crashes += 1;
            *p.to.entry(info.subsystem.clone()).or_insert(0) += 1;
            *p.causes_at
                .entry(info.subsystem.clone())
                .or_default()
                .entry(info.cause)
                .or_insert(0) += 1;
        }
    }
    p
}

/// Overall cross-subsystem propagation share (the paper's "<10%").
pub fn overall_propagation_share(records: &[RunRecord]) -> f64 {
    let mut total = 0usize;
    let mut escaped = 0usize;
    for r in records {
        if let Outcome::Crash(info) = &r.outcome {
            total += 1;
            if info.subsystem != r.target.subsystem {
                escaped += 1;
            }
        }
    }
    pct(escaped, total)
}

/// Records whose crashes were severe or most severe (Table 5 rows).
pub fn severe_crashes(records: &[RunRecord]) -> Vec<&RunRecord> {
    records
        .iter()
        .filter(|r| match &r.outcome {
            Outcome::Crash(i) => i.severity > Severity::Normal,
            _ => false,
        })
        .collect()
}

/// Most-severe crashes only (the paper's nine reformat cases).
pub fn most_severe_crashes(records: &[RunRecord]) -> Vec<&RunRecord> {
    records
        .iter()
        .filter(|r| match &r.outcome {
            Outcome::Crash(i) => i.severity == Severity::MostSevere,
            _ => false,
        })
        .collect()
}

/// Per-function crash concentration within a subsystem: the paper's
/// observation that three functions dominate their subsystems' crashes.
pub fn crash_concentration(records: &[RunRecord], subsystem: &str) -> Vec<(String, usize, f64)> {
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    let mut total = 0;
    for r in records {
        if r.target.subsystem != subsystem {
            continue;
        }
        if matches!(r.outcome, Outcome::Crash(_)) {
            *counts.entry(r.target.function.clone()).or_insert(0) += 1;
            total += 1;
        }
    }
    let mut v: Vec<(String, usize, f64)> =
        counts.into_iter().map(|(f, n)| (f, n, pct(n, total))).collect();
    v.sort_by(|a, b| b.1.cmp(&a.1));
    v
}

/// Candidate locations for detection assertions (the paper's §7.4
/// conclusion: "it is feasible to identify strategic locations for
/// embedding additional assertions ... to detect errors and prevent
/// error propagation"). Returns the crash-site functions of *propagated*
/// crashes (injected subsystem ≠ crash subsystem), ranked by how many
/// escapes each would have intercepted.
pub fn assertion_candidates(records: &[RunRecord]) -> Vec<(String, String, usize)> {
    let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
    for r in records {
        if let Outcome::Crash(info) = &r.outcome {
            if info.subsystem != r.target.subsystem {
                if let Some(f) = &info.function {
                    *counts.entry((f.clone(), info.subsystem.clone())).or_insert(0) += 1;
                }
            }
        }
    }
    let mut v: Vec<(String, String, usize)> =
        counts.into_iter().map(|((f, s), n)| (f, s, n)).collect();
    v.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));
    v
}

/// Total modeled downtime in seconds across all crashes (availability
/// discussion of §7.1).
pub fn total_downtime_secs(records: &[RunRecord]) -> u64 {
    records
        .iter()
        .filter_map(|r| match &r.outcome {
            Outcome::Crash(i) => Some(i.severity.downtime_secs() as u64),
            _ => None,
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kfi_injector::{Campaign, CrashInfo, InjectionTarget, Outcome};

    fn rec(subsys: &str, outcome: Outcome) -> RunRecord {
        RunRecord {
            target: InjectionTarget {
                campaign: Campaign::A,
                function: "f".into(),
                subsystem: subsys.into(),
                insn_addr: 0xc0100000,
                insn_len: 2,
                byte_index: 0,
                bit_mask: 1,
                is_branch: false,
            },
            mode: 0,
            outcome,
            activation_tsc: Some(1),
            run_cycles: 10,
            sanitizer_violations: 0,
        }
    }

    fn crash(subsys: &str, crash_in: &str, cause: u32, latency: u64, sev: Severity) -> RunRecord {
        rec(
            subsys,
            Outcome::Crash(CrashInfo {
                cause,
                eip: 0xc0100010,
                function: Some("g".into()),
                subsystem: crash_in.into(),
                latency,
                severity: sev,
                triple_fault: false,
            }),
        )
    }

    #[test]
    fn tally_percentages() {
        let records = vec![
            rec("fs", Outcome::NotActivated),
            rec("fs", Outcome::NotManifested),
            rec("fs", Outcome::Hang),
            crash("fs", "fs", 1, 5, Severity::Normal),
        ];
        let t = tally(&records);
        assert_eq!(t.injected, 4);
        assert_eq!(t.activated, 3);
        assert_eq!(t.crash_or_hang(), 2);
        assert!((t.activation_rate() - 75.0).abs() < 1e-9);
        assert!((t.pct_crash_or_hang() - 66.66).abs() < 0.1);
    }

    #[test]
    fn latency_buckets_cover_all() {
        assert_eq!(latency_bucket(0), 0);
        assert_eq!(latency_bucket(9), 0);
        assert_eq!(latency_bucket(10), 1);
        assert_eq!(latency_bucket(99), 1);
        assert_eq!(latency_bucket(100_000), 5);
        assert_eq!(latency_bucket(u64::MAX - 1), 5);
    }

    #[test]
    fn propagation_accounting() {
        let records = vec![
            crash("fs", "fs", 1, 5, Severity::Normal),
            crash("fs", "fs", 2, 5, Severity::Normal),
            crash("fs", "kernel", 4, 50_000, Severity::Normal),
            crash("mm", "mm", 1, 5, Severity::Normal),
        ];
        let p = propagation(&records, "fs");
        assert_eq!(p.total_crashes, 3);
        assert_eq!(p.to["fs"], 2);
        assert_eq!(p.to["kernel"], 1);
        assert!((p.self_share("fs") - 66.66).abs() < 0.1);
        let overall = overall_propagation_share(&records);
        assert!((overall - 25.0).abs() < 1e-9);
    }

    #[test]
    fn four_major_share() {
        use kfi_kernel::layout::causes as c;
        let records = vec![
            crash("fs", "fs", c::NULL_POINTER, 1, Severity::Normal),
            crash("fs", "fs", c::PAGING_REQUEST, 1, Severity::Normal),
            crash("fs", "fs", c::GPF, 1, Severity::Normal),
            crash("fs", "fs", c::DIVIDE, 1, Severity::Normal),
        ];
        assert!((four_major_causes_share(&records) - 75.0).abs() < 1e-9);
    }

    #[test]
    fn severity_filters() {
        let records = vec![
            crash("fs", "fs", 1, 1, Severity::Normal),
            crash("fs", "fs", 1, 1, Severity::Severe),
            crash("fs", "fs", 1, 1, Severity::MostSevere),
        ];
        assert_eq!(severe_crashes(&records).len(), 2);
        assert_eq!(most_severe_crashes(&records).len(), 1);
        assert_eq!(total_downtime_secs(&records), 240 + 330 + 3600);
    }

    #[test]
    fn assertion_candidates_rank_escapes() {
        let records = vec![
            crash("fs", "kernel", 1, 5, Severity::Normal),
            crash("fs", "kernel", 2, 5, Severity::Normal),
            crash("fs", "fs", 1, 5, Severity::Normal),
            crash("kernel", "mm", 1, 5, Severity::Normal),
        ];
        let c = assertion_candidates(&records);
        // "g" in kernel intercepted 2 escapes; "g" in mm intercepted 1.
        assert_eq!(c[0], ("g".to_string(), "kernel".to_string(), 2));
        assert_eq!(c[1].2, 1);
    }

    #[test]
    fn concentration_sorts_desc() {
        let mut records = vec![];
        for _ in 0..3 {
            records.push(crash("mm", "mm", 1, 1, Severity::Normal));
        }
        let mut other = crash("mm", "mm", 1, 1, Severity::Normal);
        other.target.function = "zap".into();
        records.push(other);
        let c = crash_concentration(&records, "mm");
        assert_eq!(c[0].0, "f");
        assert_eq!(c[0].1, 3);
        assert!((c[0].2 - 75.0).abs() < 1e-9);
    }
}
