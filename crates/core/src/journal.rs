//! Append-only campaign run journal: the checkpoint behind
//! `--journal`/`--resume`.
//!
//! Layout: an 8-byte magic (`KFIJRNL1`), a CRC-framed header carrying
//! the experiment seed (a journal from a different seed describes a
//! different plan and must not be merged), then one CRC frame per
//! completed run. Each frame's payload is
//!
//! ```text
//! campaign letter (1 byte) · job index (varint) ·
//! RunRecord wire encoding · per-run Metrics delta wire encoding
//! ```
//!
//! Frames are CRC-32 checked ([`kfi_trace::frame`]); a torn or corrupt
//! tail — the normal aftermath of `SIGKILL` mid-write — silently ends
//! the readable prefix instead of failing the resume. Appends are
//! fsync'd in batches of [`FLUSH_BATCH`] entries so a crash loses at
//! most one batch of *journal entries*, never already-synced ones.

use kfi_injector::{wire, RunRecord};
use kfi_trace::frame::{read_frames, write_frame, FrameTail};
use kfi_trace::{codec, Metrics};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;

/// File magic: journal format version 1.
pub const MAGIC: &[u8; 8] = b"KFIJRNL1";

/// Appends are fsync'd every this many entries (and on [`Journal::sync`]).
/// The value trades the crash-loss window (at most this many runs are
/// re-executed on resume) against fsync overhead; 16 keeps the journal
/// under the ≤2% wall-clock budget measured in `EXPERIMENTS.md`.
pub const FLUSH_BATCH: usize = 16;

/// One journaled run: enough to skip re-executing it on resume and to
/// reproduce the merged campaign metrics bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry {
    /// Campaign letter (A/B/C).
    pub campaign: char,
    /// Index of the job in the campaign's deterministic plan.
    pub index: usize,
    /// The completed run.
    pub record: RunRecord,
    /// The per-run metrics delta (`rig.take_metrics()` after the run,
    /// plus the supervisor's own counters for this job).
    pub metrics: Metrics,
}

fn encode_entry(e: &JournalEntry) -> Vec<u8> {
    let mut payload = Vec::with_capacity(128);
    payload.push(e.campaign as u8);
    codec::put_varint(&mut payload, e.index as u64);
    wire::encode_record(&mut payload, &e.record);
    e.metrics.encode_into(&mut payload);
    payload
}

fn decode_entry(payload: &[u8]) -> Option<JournalEntry> {
    let mut pos = 0;
    let campaign = *payload.first()? as char;
    pos += 1;
    let index = codec::get_varint(payload, &mut pos).ok()? as usize;
    let record = wire::decode_record(payload, &mut pos).ok()?;
    let metrics = Metrics::decode_from(payload, &mut pos).ok()?;
    if pos != payload.len() {
        return None;
    }
    Some(JournalEntry { campaign, index, record, metrics })
}

/// An open journal being appended to.
pub struct Journal {
    file: File,
    pending: usize,
    /// fsync batches completed so far (surfaced on stderr, deliberately
    /// never merged into campaign metrics — flush counts differ between
    /// an interrupted-and-resumed campaign and an uninterrupted one).
    pub flushes: u64,
}

impl Journal {
    /// Creates (truncating) a journal for a campaign plan with the
    /// given seed.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn create(path: &Path, seed: u64) -> std::io::Result<Journal> {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir)?;
        }
        let mut file = File::create(path)?;
        let mut buf = Vec::with_capacity(32);
        buf.extend_from_slice(MAGIC);
        let mut header = Vec::new();
        codec::put_varint(&mut header, seed);
        write_frame(&mut buf, &header);
        file.write_all(&buf)?;
        file.sync_data()?;
        Ok(Journal { file, pending: 0, flushes: 1 })
    }

    /// Opens an existing journal for appending. The caller must know
    /// the file ends cleanly on a frame boundary — appending after a
    /// torn tail orphans the new frames (readers stop at the damage).
    /// Resume goes through [`resume`], which truncates the damage
    /// first.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn append_to(path: &Path) -> std::io::Result<Journal> {
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(Journal { file, pending: 0, flushes: 0 })
    }

    /// Appends one entry, fsyncing every [`FLUSH_BATCH`] appends.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn append(&mut self, entry: &JournalEntry) -> std::io::Result<()> {
        let payload = encode_entry(entry);
        let mut framed = Vec::with_capacity(payload.len() + 8);
        write_frame(&mut framed, &payload);
        self.file.write_all(&framed)?;
        self.pending += 1;
        if self.pending >= FLUSH_BATCH {
            self.sync()?;
        }
        Ok(())
    }

    /// Forces any pending appends to disk.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn sync(&mut self) -> std::io::Result<()> {
        if self.pending > 0 {
            self.file.sync_data()?;
            self.pending = 0;
            self.flushes += 1;
        }
        Ok(())
    }
}

/// Why a journal could not be used for resume.
#[derive(Debug)]
pub enum JournalError {
    /// The file could not be read.
    Io(std::io::Error),
    /// Not a journal (bad magic) or an unreadable header.
    BadHeader,
    /// The journal was written for a different seed — its plan is not
    /// ours, so none of its entries apply.
    SeedMismatch {
        /// Seed in the journal header.
        found: u64,
        /// Seed of the current experiment.
        expected: u64,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::BadHeader => write!(f, "not a run journal (bad magic or header)"),
            JournalError::SeedMismatch { found, expected } => {
                write!(f, "journal seed {found} does not match experiment seed {expected}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> JournalError {
        JournalError::Io(e)
    }
}

/// Parses a journal byte buffer: validates magic, header and seed, then
/// decodes entries until the first damaged frame or undecodable
/// payload. Also returns the byte length of the valid prefix — the
/// point a resume must truncate to before appending.
fn scan(
    buf: &[u8],
    expected_seed: u64,
) -> Result<(Vec<JournalEntry>, FrameTail, u64), JournalError> {
    if buf.len() < MAGIC.len() || &buf[..MAGIC.len()] != MAGIC {
        return Err(JournalError::BadHeader);
    }
    let (frames, tail) = read_frames(&buf[MAGIC.len()..]);
    let mut frames = frames.into_iter();
    let header = frames.next().ok_or(JournalError::BadHeader)?;
    let mut pos = 0;
    let found = codec::get_varint(header, &mut pos).map_err(|_| JournalError::BadHeader)?;
    if found != expected_seed {
        return Err(JournalError::SeedMismatch { found, expected: expected_seed });
    }
    let mut valid_len = (MAGIC.len() + 8 + header.len()) as u64;
    let mut entries = Vec::new();
    let mut tail = tail;
    for frame in frames {
        match decode_entry(frame) {
            Some(e) => {
                entries.push(e);
                valid_len += (8 + frame.len()) as u64;
            }
            None => {
                // CRC-valid frame with an undecodable payload: fence it
                // off like corruption so appends land before it, never
                // after.
                tail = FrameTail::Corrupt { offset: valid_len as usize - MAGIC.len() };
                break;
            }
        }
    }
    Ok((entries, tail, valid_len))
}

/// Reads every decodable entry from a journal, validating the magic and
/// seed. A truncated or corrupt tail (torn final write) ends the result
/// without error; an entry whose payload fails to decode likewise ends
/// it — everything before the damage is still good.
///
/// # Errors
///
/// [`JournalError`] on I/O failure, bad magic/header, or seed mismatch.
pub fn read_journal(path: &Path, expected_seed: u64) -> Result<Vec<JournalEntry>, JournalError> {
    read_journal_tail(path, expected_seed).map(|(entries, _)| entries)
}

/// Like [`read_journal`] but also reports whether the file ended
/// cleanly (used by tests and the resume report).
///
/// # Errors
///
/// Same as [`read_journal`].
pub fn read_journal_tail(
    path: &Path,
    expected_seed: u64,
) -> Result<(Vec<JournalEntry>, FrameTail), JournalError> {
    let mut buf = Vec::new();
    File::open(path)?.read_to_end(&mut buf)?;
    let (entries, tail, _) = scan(&buf, expected_seed)?;
    Ok((entries, tail))
}

/// Resumes from an existing journal: reads its valid prefix, truncates
/// any torn/corrupt tail (so subsequent appends stay reachable — frames
/// written after damage would be invisible to every future reader), and
/// reopens the file for appending.
///
/// # Errors
///
/// [`JournalError`] on I/O failure, bad magic/header, or seed mismatch.
pub fn resume(
    path: &Path,
    expected_seed: u64,
) -> Result<(Vec<JournalEntry>, Journal), JournalError> {
    let mut buf = Vec::new();
    File::open(path)?.read_to_end(&mut buf)?;
    let (entries, _tail, valid_len) = scan(&buf, expected_seed)?;
    let file = OpenOptions::new().append(true).open(path)?;
    if valid_len < buf.len() as u64 {
        file.set_len(valid_len)?;
        file.sync_data()?;
    }
    Ok((entries, Journal { file, pending: 0, flushes: 0 }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kfi_injector::{Campaign, InjectionTarget, Outcome};

    fn entry(index: usize) -> JournalEntry {
        let mut metrics = Metrics::default();
        metrics.runs = 1;
        metrics.instructions = 1000 + index as u64;
        metrics.run_cycles.record(42);
        JournalEntry {
            campaign: 'A',
            index,
            record: RunRecord {
                target: InjectionTarget {
                    campaign: Campaign::A,
                    function: format!("fn_{index}"),
                    subsystem: "fs".into(),
                    insn_addr: 0xc010_0000 + index as u32,
                    insn_len: 3,
                    byte_index: 1,
                    bit_mask: 0x20,
                    is_branch: false,
                },
                mode: 2,
                outcome: Outcome::NotManifested,
                activation_tsc: Some(777),
                run_cycles: 1234,
                sanitizer_violations: 0,
            },
            metrics,
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("kfi-journal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    #[test]
    fn roundtrip_entries() {
        let path = tmp("roundtrip");
        let mut j = Journal::create(&path, 2003).unwrap();
        for i in 0..20 {
            j.append(&entry(i)).unwrap();
        }
        j.sync().unwrap();
        let back = read_journal(&path, 2003).unwrap();
        assert_eq!(back.len(), 20);
        for (i, e) in back.iter().enumerate() {
            assert_eq!(*e, entry(i));
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn seed_mismatch_rejected() {
        let path = tmp("seed");
        Journal::create(&path, 1).unwrap();
        assert!(matches!(
            read_journal(&path, 2),
            Err(JournalError::SeedMismatch { found: 1, expected: 2 })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_keeps_prefix() {
        let path = tmp("torn");
        let mut j = Journal::create(&path, 9).unwrap();
        for i in 0..5 {
            j.append(&entry(i)).unwrap();
        }
        j.sync().unwrap();
        drop(j);
        let whole = std::fs::read(&path).unwrap();
        // Chop off part of the final frame: a torn write.
        std::fs::write(&path, &whole[..whole.len() - 7]).unwrap();
        let (entries, tail) = read_journal_tail(&path, 9).unwrap();
        assert_eq!(entries.len(), 4);
        assert!(matches!(tail, FrameTail::Truncated { .. }));
        // Corrupt a byte inside the last intact frame instead.
        let mut bad = whole.clone();
        let n = bad.len();
        bad[n - 3] ^= 0xff;
        std::fs::write(&path, &bad).unwrap();
        let (entries, tail) = read_journal_tail(&path, 9).unwrap();
        assert_eq!(entries.len(), 4);
        assert!(matches!(tail, FrameTail::Corrupt { .. }));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn not_a_journal_rejected() {
        let path = tmp("garbage");
        std::fs::write(&path, b"definitely not a journal").unwrap();
        assert!(matches!(read_journal(&path, 0), Err(JournalError::BadHeader)));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn resume_truncates_torn_tail_so_appends_stay_reachable() {
        let path = tmp("resume-tear");
        let mut j = Journal::create(&path, 7).unwrap();
        for i in 0..5 {
            j.append(&entry(i)).unwrap();
        }
        j.sync().unwrap();
        drop(j);
        let whole = std::fs::read(&path).unwrap();
        std::fs::write(&path, &whole[..whole.len() - 7]).unwrap();

        let (entries, mut j) = resume(&path, 7).unwrap();
        assert_eq!(entries.len(), 4);
        // Re-run of the torn run: its fresh entry must land where the
        // damage was, not after it.
        j.append(&entry(4)).unwrap();
        j.sync().unwrap();
        drop(j);

        let (back, tail) = read_journal_tail(&path, 7).unwrap();
        assert_eq!(back.len(), 5);
        assert_eq!(back[4], entry(4));
        assert!(matches!(tail, FrameTail::Clean));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_to_continues_existing() {
        let path = tmp("appendto");
        let mut j = Journal::create(&path, 5).unwrap();
        j.append(&entry(0)).unwrap();
        j.sync().unwrap();
        drop(j);
        let mut j = Journal::append_to(&path).unwrap();
        j.append(&entry(1)).unwrap();
        j.sync().unwrap();
        drop(j);
        let back = read_journal(&path, 5).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[1], entry(1));
        std::fs::remove_file(&path).unwrap();
    }
}
