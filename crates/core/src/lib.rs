//! # kfi-core — experiment orchestration and statistics
//!
//! The facade tying the reproduction together: build the kernel +
//! workloads, profile them (Kernprof-equivalent), select the top
//! functions covering 95% of kernel activity, plan and execute the
//! three fault-injection campaigns in parallel, and aggregate the
//! statistics behind every table and figure of the paper.
//!
//! # Examples
//!
//! Run a miniature campaign and read the aggregated metrics (results
//! are bit-identical for any `threads` value and a fixed `seed`):
//!
//! ```
//! use kfi_core::{Experiment, ExperimentConfig};
//! use kfi_injector::Campaign;
//! use kfi_profiler::ProfilerConfig;
//!
//! let exp = Experiment::prepare(ExperimentConfig {
//!     seed: 7,
//!     max_per_function: Some(1), // one injection per target function
//!     threads: 2,
//!     profiler: ProfilerConfig { period: 997, budget: 200_000_000 },
//!     ..Default::default()
//! })?;
//! let result = exp.run_campaign(Campaign::A);
//!
//! assert_eq!(result.metrics.runs, result.records.len() as u64);
//! for rec in &result.records {
//!     println!("{:#010x} -> {}", rec.target.insn_addr, rec.outcome.category());
//! }
//! # Ok::<(), String>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod dist;
pub mod experiment;
pub mod journal;
pub mod matrix;
pub mod setup;
pub mod stats;
pub mod supervisor;

pub use dataset::{metrics_to_csv, to_csv, RecordRow, METRICS_CSV_HEADER};
pub use dist::{
    chunk_size, plan_fingerprint, run_study_dist, run_worker, ChaosAction, ChaosEvent, ChaosPlan,
    DistConfig, DistReport, DistStudy, WorkerConfig,
};
pub use experiment::{
    CampaignResult, Experiment, ExperimentConfig, StudyResult, INJECTED_SUBSYSTEMS,
};
pub use journal::{Journal, JournalEntry};
pub use matrix::{
    matrix_to_csv, plan_cell, run_matrix, CellResult, MatrixCell, MatrixConfig, MatrixResult,
};
pub use setup::{setup_summary, SetupItem};
pub use stats::OutcomeTally;
pub use supervisor::{
    run_campaign_supervised, run_plan_supervised, run_study_supervised, PanicInjection,
    QuarantineReport, SupervisedCampaign, SupervisedStudy, SupervisorConfig, SupervisorReport,
};
