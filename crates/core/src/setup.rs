//! The experimental-setup summary (the paper's Table 2), with our
//! simulated equivalents.

/// One row of the setup summary: a labelled aspect and its value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetupItem {
    /// Group heading (hardware / OS / tools).
    pub group: &'static str,
    /// Aspect label.
    pub label: &'static str,
    /// The paper's value.
    pub paper: &'static str,
    /// This reproduction's value.
    pub ours: &'static str,
}

/// The full Table 2 with paper-vs-reproduction values.
pub fn setup_summary() -> Vec<SetupItem> {
    vec![
        SetupItem {
            group: "Hardware",
            label: "CPU type",
            paper: "Intel P4",
            ours: "kfi-machine (IA-32 subset simulator)",
        },
        SetupItem {
            group: "Hardware",
            label: "CPU clock",
            paper: "1.5 GHz",
            ours: "cycle-accurate cost model (TSC)",
        },
        SetupItem {
            group: "Hardware",
            label: "Cache",
            paper: "256 KB",
            ours: "512-entry software TLB",
        },
        SetupItem {
            group: "Hardware",
            label: "Memory",
            paper: "256 MB",
            ours: "8 MiB guest physical",
        },
        SetupItem {
            group: "Linux OS",
            label: "Kernel",
            paper: "2.4.19",
            ours: "kfi guest kernel (2.4-style, asm)",
        },
        SetupItem {
            group: "Linux OS",
            label: "Distribution",
            paper: "RedHat 7.3",
            ours: "ext2-lite image + /init + /bin suite",
        },
        SetupItem {
            group: "Linux OS",
            label: "File system",
            paper: "Ext2",
            ours: "ext2-lite (1 KiB blocks, bitmaps, inodes)",
        },
        SetupItem {
            group: "Tools",
            label: "Crash dump",
            paper: "LKCD",
            ours: "kfi-dump (machine snapshots + oops capture)",
        },
        SetupItem {
            group: "Tools",
            label: "Workload",
            paper: "UnixBench",
            ours: "kfi-workloads (8 analog programs)",
        },
        SetupItem {
            group: "Tools",
            label: "Profiling",
            paper: "Kernprof",
            ours: "kfi-profiler (PC sampling)",
        },
        SetupItem {
            group: "Tools",
            label: "Kernel debug",
            paper: "KDB",
            ours: "kfi-asm disassembler + probe API",
        },
        SetupItem {
            group: "Tools",
            label: "Error injection",
            paper: "Linux Kernel Injector",
            ours: "kfi-injector (DR-triggered bit flips)",
        },
        SetupItem {
            group: "Tools",
            label: "Campaign setup",
            paper: "reboot + golden rerun per injection",
            ours: "CoW rig forks + memoized golden store",
        },
    ]
}

#[cfg(test)]
mod tests {
    #[test]
    fn covers_all_groups() {
        let s = super::setup_summary();
        for g in ["Hardware", "Linux OS", "Tools"] {
            assert!(s.iter().any(|i| i.group == g));
        }
        assert!(s.iter().any(|i| i.paper == "UnixBench"));
    }
}
