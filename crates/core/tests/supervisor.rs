//! Campaign-supervisor robustness: panic containment with zero lost
//! records, journaled resume equivalence after a torn journal, poison
//! quarantine, and wall-clock watchdog completion.

use kfi_core::supervisor::{run_campaign_supervised, PanicInjection, SupervisorConfig};
use kfi_core::{CampaignResult, Experiment, ExperimentConfig};
use kfi_injector::{Campaign, Outcome};
use kfi_profiler::ProfilerConfig;
use std::collections::BTreeSet;
use std::path::PathBuf;

fn mini_experiment(threads: usize) -> Experiment {
    Experiment::prepare(ExperimentConfig {
        seed: 11,
        max_per_function: Some(2),
        threads,
        profiler: ProfilerConfig { period: 997, budget: 200_000_000 },
        ..Default::default()
    })
    .expect("prepare")
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("kfi-supervisor-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}-{}", std::process::id()))
}

fn baseline(exp: &Experiment) -> CampaignResult {
    exp.run_campaign(Campaign::A)
}

#[test]
fn transient_panics_lose_zero_records() {
    let exp = mini_experiment(2);
    let base = baseline(&exp);
    let panicking: BTreeSet<usize> = [0usize, 3, 7].into_iter().collect();
    let cfg = SupervisorConfig {
        inject_panic: PanicInjection::Transient(panicking.clone()),
        ..SupervisorConfig::default()
    };
    let out = run_campaign_supervised(&exp, Campaign::A, &cfg).expect("supervised");
    // Every record present and bit-identical to the healthy campaign:
    // the retried runs reproduce exactly on a fresh rig.
    assert_eq!(out.result.records, base.records);
    assert_eq!(out.result.metrics.rig_panics, panicking.len() as u64);
    assert_eq!(out.result.metrics.run_retries, panicking.len() as u64);
    assert_eq!(out.result.metrics.quarantined_runs, 0);
    assert!(out.result.records.iter().all(|r| !matches!(r.outcome, Outcome::RigFault(_))));
    // Outside the supervisor's own counters the metrics must match the
    // healthy campaign too.
    let mut cleaned = out.result.metrics.clone();
    cleaned.rig_panics = 0;
    cleaned.run_retries = 0;
    assert_eq!(cleaned, base.metrics);
}

#[test]
fn persistent_panic_is_quarantined_as_rig_fault() {
    let exp = mini_experiment(1);
    let base = baseline(&exp);
    let qdir = tmp("quarantine");
    let _ = std::fs::remove_dir_all(&qdir);
    let cfg = SupervisorConfig {
        inject_panic: PanicInjection::Persistent([2usize].into_iter().collect()),
        quarantine_dir: Some(qdir.clone()),
        ..SupervisorConfig::default()
    };
    let out = run_campaign_supervised(&exp, Campaign::A, &cfg).expect("supervised");
    assert_eq!(out.result.records.len(), base.records.len(), "no record may be lost");
    match &out.result.records[2].outcome {
        Outcome::RigFault(msg) => assert!(msg.contains("injected worker panic"), "{msg}"),
        other => panic!("expected RigFault at index 2, got {other:?}"),
    }
    for (i, (got, want)) in out.result.records.iter().zip(base.records.iter()).enumerate() {
        if i != 2 {
            assert_eq!(got, want, "record {i} disturbed by the quarantined neighbor");
        }
    }
    assert_eq!(out.result.metrics.quarantined_runs, 1);
    assert_eq!(out.report.quarantined.len(), 1);
    let q = &out.report.quarantined[0];
    assert_eq!(q.index, 2);
    let artifact = q.path.as_ref().expect("artifact written");
    let text = std::fs::read_to_string(artifact).expect("artifact readable");
    assert!(text.contains("kfi quarantine artifact"));
    assert!(text.contains(&format!("seed: {}", exp.config.seed)));
    assert!(text.contains("injected worker panic"));
    let _ = std::fs::remove_dir_all(&qdir);
}

#[test]
fn torn_journal_resume_is_bit_identical() {
    let journal = tmp("journal");
    let _ = std::fs::remove_file(&journal);

    // Uninterrupted supervised run, single worker, journal on.
    let exp1 = mini_experiment(1);
    let cfg1 = SupervisorConfig { journal: Some(journal.clone()), ..SupervisorConfig::default() };
    let full = run_campaign_supervised(&exp1, Campaign::A, &cfg1).expect("journaled run");
    assert_eq!(full.report.resumed_runs, 0);

    // The journal-on run must itself match the journal-off baseline.
    let base = baseline(&exp1);
    assert_eq!(full.result.records, base.records);
    assert_eq!(full.result.metrics, base.metrics);

    // Tear the journal mid-record — the SIGKILL aftermath — and resume
    // with a different worker count.
    let bytes = std::fs::read(&journal).unwrap();
    std::fs::write(&journal, &bytes[..bytes.len() - 11]).unwrap();
    let exp2 = mini_experiment(2);
    let cfg2 = SupervisorConfig {
        journal: Some(journal.clone()),
        resume: true,
        ..SupervisorConfig::default()
    };
    let resumed = run_campaign_supervised(&exp2, Campaign::A, &cfg2).expect("resumed run");
    assert!(resumed.report.resumed_runs > 0, "resume must skip journaled runs");
    assert!(
        resumed.report.resumed_runs < full.result.records.len(),
        "the torn tail must force at least one re-run"
    );
    assert_eq!(resumed.result.records, full.result.records);
    assert_eq!(resumed.result.metrics, full.result.metrics);

    // And the journal is now complete: a second resume re-runs nothing.
    let again = run_campaign_supervised(&exp2, Campaign::A, &cfg2).expect("second resume");
    assert_eq!(again.report.resumed_runs, full.result.records.len());
    assert_eq!(again.result.records, full.result.records);
    assert_eq!(again.result.metrics, full.result.metrics);
    let _ = std::fs::remove_file(&journal);
}

#[test]
fn wall_watchdog_reaps_runs_and_campaign_completes() {
    let exp = mini_experiment(1);
    let planned = exp.plan(Campaign::A).len();
    let cfg = SupervisorConfig {
        wall_budget: Some(std::time::Duration::ZERO),
        // No retries: an aborted run is a result (Hang / NotActivated),
        // not a poisoned one, so none should be quarantined.
        ..SupervisorConfig::default()
    };
    let out = run_campaign_supervised(&exp, Campaign::A, &cfg).expect("supervised");
    assert_eq!(out.result.records.len(), planned, "campaign must complete");
    assert!(
        out.result.metrics.wall_watchdog_fired > 0,
        "a zero wall budget must reap at least one run"
    );
    assert_eq!(out.result.metrics.quarantined_runs, 0);
    // A reaped run is cut short before its outcome can be anything
    // other than the watchdog views: hang (aborted after activation)
    // or not-activated (aborted before the trigger fired).
    for r in &out.result.records {
        assert!(
            !matches!(r.outcome, Outcome::RigFault(_)),
            "watchdog aborts are results, not rig faults: {:?}",
            r.outcome
        );
    }
}
