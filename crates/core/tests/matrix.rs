//! Campaign-matrix determinism: per cell, records/metrics/journal
//! bytes are identical at 1/2/4 workers, across journal on/off, and
//! through interrupt-and-resume — and the matrix CSV carries the cell
//! key on every row.

use kfi_core::{matrix_to_csv, run_matrix, MatrixConfig, MatrixResult};
use kfi_kernel::KernelBuildOptions;
use kfi_profiler::ProfilerConfig;
use std::path::PathBuf;

fn config(threads: usize, journal_dir: Option<PathBuf>, resume: bool) -> MatrixConfig {
    MatrixConfig {
        kernels: vec![("server".into(), KernelBuildOptions { server: true, ..Default::default() })],
        workloads: vec!["echo".into(), "netstorm".into()],
        subsystems: vec!["ipc".into(), "net".into()],
        seed: 8,
        threads,
        max_per_function: Some(2),
        profiler: ProfilerConfig { period: 997, budget: 30_000_000 },
        journal_dir,
        resume,
        ..Default::default()
    }
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("kfi-matrix-tests")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn journal_bytes(dir: &PathBuf) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "journal"))
        .collect();
    files.sort();
    files
        .into_iter()
        .map(|p| {
            let name = p.file_name().unwrap().to_string_lossy().into_owned();
            (name, std::fs::read(&p).unwrap())
        })
        .collect()
}

fn assert_same_dataset(a: &MatrixResult, b: &MatrixResult, what: &str) {
    assert_eq!(a.cells.len(), b.cells.len(), "{what}: cell count");
    for (ca, cb) in a.cells.iter().zip(&b.cells) {
        assert_eq!(ca.cell, cb.cell, "{what}: cell order");
        let key = ca.cell.key();
        assert_eq!(ca.result.records, cb.result.records, "{what}: records ({key})");
        assert_eq!(ca.result.metrics, cb.result.metrics, "{what}: metrics ({key})");
    }
    assert_eq!(matrix_to_csv(a), matrix_to_csv(b), "{what}: CSV");
}

#[test]
fn matrix_is_deterministic_across_workers_and_resume() {
    let d1 = tmp("baseline");
    let base = run_matrix(&config(1, Some(d1.clone()), false)).expect("matrix runs");
    assert_eq!(base.cells.len(), 4);
    let base_journals = journal_bytes(&d1);
    assert_eq!(base_journals.len(), 4, "one journal per cell");

    // Every cell planned work and produced one record per target.
    for c in &base.cells {
        assert!(!c.result.records.is_empty(), "{} planned nothing", c.cell.key());
        assert_eq!(c.result.metrics.runs, c.result.records.len() as u64, "{}", c.cell.key());
        assert_eq!(c.report.resumed_runs, 0);
    }
    // The traffic workloads drive the new handlers: the echo/ipc and
    // netstorm/net cells must see activated injections.
    for (w, s) in [("echo", "ipc"), ("netstorm", "net")] {
        let cell = base
            .cells
            .iter()
            .find(|c| c.cell.workload == w && c.cell.subsystem == s)
            .expect("cell exists");
        assert!(
            cell.result.records.iter().any(|r| r.outcome != kfi_injector::Outcome::NotActivated),
            "no activated injection in {w}/{s}"
        );
    }

    // Worker-count invariance, with and without journals.
    for threads in [2, 4] {
        let dn = tmp(&format!("w{threads}"));
        let got = run_matrix(&config(threads, Some(dn.clone()), false)).expect("matrix runs");
        assert_same_dataset(&base, &got, &format!("{threads} workers"));
        assert_eq!(journal_bytes(&dn), base_journals, "journal bytes ({threads} workers)");
    }
    let unjournaled = run_matrix(&config(2, None, false)).expect("matrix runs");
    assert_same_dataset(&base, &unjournaled, "journal off");

    // Full resume: every run replays from the journals, bytes unchanged.
    let resumed = run_matrix(&config(1, Some(d1.clone()), true)).expect("matrix resumes");
    assert_same_dataset(&base, &resumed, "full resume");
    for c in &resumed.cells {
        assert_eq!(
            c.report.resumed_runs,
            c.result.records.len(),
            "{} did not resume fully",
            c.cell.key()
        );
    }
    assert_eq!(journal_bytes(&d1), base_journals, "journals grew on full resume");

    // Interrupted resume: torn tail on one cell's journal (mid-frame
    // cut), the rest intact. The resumed matrix must reproduce the
    // dataset and the journal bytes exactly.
    let d3 = tmp("interrupted");
    for (name, bytes) in &base_journals {
        std::fs::write(d3.join(name), bytes).unwrap();
    }
    let (victim, bytes) = &base_journals[0];
    assert!(bytes.len() > 200, "victim journal too small to tear");
    std::fs::write(d3.join(victim), &bytes[..bytes.len() - 200]).unwrap();
    let reresumed = run_matrix(&config(4, Some(d3.clone()), true)).expect("matrix resumes");
    assert_same_dataset(&base, &reresumed, "interrupted resume");
    assert_eq!(journal_bytes(&d3), base_journals, "journal bytes after torn-tail resume");
    let replayed: usize = reresumed.cells.iter().map(|c| c.report.resumed_runs).sum();
    let total: usize = base.cells.iter().map(|c| c.result.records.len()).sum();
    assert!(replayed < total, "the torn cell must re-execute its lost tail");
    assert!(replayed > 0, "intact cells must replay");
}

#[test]
fn matrix_csv_rows_carry_cell_keys() {
    let m = run_matrix(&config(1, None, false)).expect("matrix runs");
    let csv = matrix_to_csv(&m);
    let mut sections = csv.split("\n\n");
    let records = sections.next().unwrap();
    let metrics = sections.next().unwrap();
    assert!(records.starts_with("kernel,workload,subsystem,campaign,function,"));
    assert!(metrics.starts_with("kernel,workload,subsystem,campaign,runs,"));
    let keys: Vec<String> = m.cells.iter().map(|c| c.cell.key().replace('/', ",")).collect();
    for line in records.lines().skip(1) {
        assert!(keys.iter().any(|k| line.starts_with(&format!("{k},"))), "bad key: {line}");
    }
    // One metrics row per cell, in axis order.
    let metric_rows: Vec<&str> = metrics.lines().skip(1).collect();
    assert_eq!(metric_rows.len(), m.cells.len());
    for (row, key) in metric_rows.iter().zip(&keys) {
        assert!(row.starts_with(&format!("{key},A,")), "bad metrics key: {row}");
    }
}
