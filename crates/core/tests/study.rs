//! Small-scale end-to-end study: prepare the experiment, run all three
//! campaigns with capped targets, and sanity-check the paper-shape
//! properties of the results.

use kfi_core::{stats, Experiment, ExperimentConfig};
use kfi_injector::Campaign;
use kfi_profiler::ProfilerConfig;

fn small_experiment() -> Experiment {
    Experiment::prepare(ExperimentConfig {
        seed: 7,
        max_per_function: Some(6),
        threads: 4,
        profiler: ProfilerConfig { period: 501, budget: 200_000_000 },
        ..Default::default()
    })
    .expect("prepare")
}

#[test]
fn full_small_study() {
    let exp = small_experiment();
    assert!(
        exp.target_functions.len() >= 8,
        "too few target functions: {:?}",
        exp.target_functions
    );
    let names = &exp.target_functions;
    assert!(
        names.iter().any(|n| n == "do_generic_file_read")
            || names.iter().any(|n| n == "pipe_read")
            || names.iter().any(|n| n == "schedule"),
        "{names:?}"
    );

    let study = exp.run_all();
    for (letter, result) in &study.campaigns {
        let t = result.total();
        assert!(t.injected > 20, "campaign {letter}: {t:?}");
        assert!(t.activated > 0, "campaign {letter} activated nothing");
        assert_eq!(
            t.activated,
            t.not_manifested + t.fsv + t.crash + t.hang,
            "campaign {letter}: {t:?}"
        );
        assert!(t.activated <= t.injected);
    }

    let c = &study.campaigns[&'C'];
    assert!(c.records.iter().all(|r| r.target.is_branch));

    let a = &study.campaigns[&'A'];
    for r in &a.records {
        if let kfi_injector::Outcome::Crash(i) = &r.outcome {
            assert!(!i.subsystem.is_empty());
        }
    }
}

#[test]
fn plan_respects_cap_and_seed() {
    let exp = small_experiment();
    let p1 = exp.plan(Campaign::A);
    let p2 = exp.plan(Campaign::A);
    assert_eq!(p1, p2, "planning must be deterministic");
    let mut counts = std::collections::BTreeMap::new();
    for t in &p1 {
        *counts.entry(t.function.clone()).or_insert(0usize) += 1;
    }
    assert!(counts.values().all(|c| *c <= 6));
}

#[test]
fn threads_do_not_change_results() {
    let mut cfg = ExperimentConfig {
        seed: 11,
        max_per_function: Some(2),
        threads: 1,
        profiler: ProfilerConfig { period: 997, budget: 200_000_000 },
        ..Default::default()
    };
    let exp1 = Experiment::prepare(cfg.clone()).unwrap();
    let r1 = exp1.run_campaign(Campaign::C);
    cfg.threads = 4;
    let exp4 = Experiment::prepare(cfg).unwrap();
    let r4 = exp4.run_campaign(Campaign::C);
    let key = |r: &kfi_injector::RunRecord| {
        (r.target.insn_addr, r.target.byte_index, r.outcome.category().to_string())
    };
    let k1: Vec<_> = r1.records.iter().map(key).collect();
    let k4: Vec<_> = r4.records.iter().map(key).collect();
    assert_eq!(k1, k4);
}

/// Campaign metrics are merged from per-worker registries with pure
/// addition, so the aggregate must be bit-identical for any worker
/// count — the sharding (`i % threads`) must be invisible.
#[test]
fn threads_do_not_change_metrics() {
    let base = ExperimentConfig {
        seed: 11,
        max_per_function: Some(2),
        threads: 1,
        profiler: ProfilerConfig { period: 997, budget: 200_000_000 },
        ..Default::default()
    };
    let mut results = Vec::new();
    for threads in [1, 2, 4] {
        let exp = Experiment::prepare(ExperimentConfig { threads, ..base.clone() }).unwrap();
        results.push((threads, exp.run_campaign(Campaign::A).metrics));
    }
    let (_, one) = &results[0];
    assert!(one.runs > 0);
    assert_eq!(
        one.runs,
        one.outcomes.iter().sum::<u64>(),
        "every run must be classified exactly once"
    );
    assert_eq!(one.runs, one.run_cycles.total());
    assert!(one.runs_not_activated < one.runs, "some runs must activate");
    assert!(one.instructions > 0);
    for (threads, m) in &results[1..] {
        assert_eq!(one, m, "metrics changed between 1 and {threads} workers");
    }
}

#[test]
fn stats_pipeline_over_real_records() {
    let exp = small_experiment();
    let result = exp.run_campaign(Campaign::A);
    let tallies = result.tallies();
    assert!(!tallies.is_empty());
    let total: usize = tallies.values().map(|t| t.injected).sum();
    assert_eq!(total, result.records.len());
    let hist = stats::latency_histogram(&result.records, None);
    let crashes = result.total().crash;
    assert_eq!(hist.iter().sum::<usize>(), crashes);
    let rows: Vec<_> = result.records.iter().map(kfi_core::RecordRow::from_record).collect();
    let csv = kfi_core::to_csv(&rows);
    assert_eq!(csv.lines().count(), rows.len() + 1);
}
