//! Distributed-coordinator properties that need no worker subprocess:
//! plan fingerprinting, dedup/lease bookkeeping invariants, and the
//! pool-collapse degradation path (every spawn fails → the campaign
//! still completes in-process with a byte-identical dataset and zero
//! lost plan indices).

use kfi_core::supervisor::SupervisorConfig;
use kfi_core::{plan_fingerprint, run_study_dist, DistConfig, Experiment, ExperimentConfig};
use kfi_injector::Campaign;
use kfi_profiler::ProfilerConfig;
use std::path::PathBuf;

fn experiment(seed: u64, cap: usize, threads: usize) -> Experiment {
    Experiment::prepare(ExperimentConfig {
        seed,
        max_per_function: Some(cap),
        threads,
        profiler: ProfilerConfig { period: 997, budget: 200_000_000 },
        ..Default::default()
    })
    .expect("prepare")
}

#[test]
fn fingerprint_is_config_determined_not_schedule_determined() {
    // Scheduling knobs (thread count) must not move the fingerprint;
    // plan-determining knobs (seed, cap) must.
    let base = experiment(11, 2, 1);
    let fp = plan_fingerprint(&base);
    assert_eq!(
        fp,
        plan_fingerprint(&experiment(11, 2, 4)),
        "thread count leaked into the plan fingerprint"
    );
    assert_ne!(fp, plan_fingerprint(&experiment(12, 2, 1)), "seed must change the fingerprint");
    assert_ne!(fp, plan_fingerprint(&experiment(11, 3, 1)), "cap must change the fingerprint");
}

#[test]
fn pool_collapse_degrades_to_in_process_with_zero_lost_jobs() {
    let exp = experiment(11, 2, 1);
    let (reference, _) = kfi_core::run_study_supervised(&exp, &SupervisorConfig::default())
        .map(|s| (s.study, s.report))
        .expect("supervised runs");

    // A worker exe that cannot exist: every spawn fails, every slot is
    // quarantined immediately, and the coordinator must fall back to
    // the in-process path for the entire plan.
    let cfg = DistConfig::new(3, PathBuf::from("/nonexistent/kfi-no-such-worker"), vec![]);
    let dist = run_study_dist(&exp, &cfg).expect("degraded run completes");

    assert_eq!(dist.report.workers_quarantined, 3, "all slots must be quarantined");
    assert_eq!(dist.report.workers_spawned, 0);
    let planned: usize =
        [Campaign::A, Campaign::B, Campaign::C].iter().map(|c| exp.plan(*c).len()).sum();
    assert_eq!(dist.report.jobs_degraded as usize, planned, "every job ran in-process");

    // Zero silently-lost plan indices, and record-for-record equality
    // with the supervised run.
    for (letter, result) in &dist.study.campaigns {
        let reference = &reference.campaigns[letter];
        let campaign = [Campaign::A, Campaign::B, Campaign::C]
            .into_iter()
            .find(|c| c.letter() == *letter)
            .unwrap();
        assert_eq!(
            result.records.len(),
            exp.plan(campaign).len(),
            "campaign {letter} lost plan indices"
        );
        assert_eq!(result.records, reference.records, "campaign {letter} records differ");
        assert_eq!(result.functions_injected, reference.functions_injected);
    }
}

#[test]
fn degraded_dist_run_journals_identically_to_supervised() {
    let exp = experiment(11, 2, 1);
    let dir = std::env::temp_dir().join("kfi-core-dist-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let jsup = dir.join(format!("sup-{}", std::process::id()));
    let jdist = dir.join(format!("dist-{}", std::process::id()));
    let _ = std::fs::remove_file(&jsup);
    let _ = std::fs::remove_file(&jdist);

    let sup_cfg = SupervisorConfig { journal: Some(jsup.clone()), ..SupervisorConfig::default() };
    kfi_core::run_study_supervised(&exp, &sup_cfg).expect("supervised runs");

    let mut cfg = DistConfig::new(2, PathBuf::from("/nonexistent/kfi-no-such-worker"), vec![]);
    cfg.journal = Some(jdist.clone());
    run_study_dist(&exp, &cfg).expect("degraded run completes");

    let a = std::fs::read(&jsup).unwrap();
    let b = std::fs::read(&jdist).unwrap();
    assert_eq!(a, b, "degraded dist journal differs from the supervised journal");
    let _ = std::fs::remove_file(&jsup);
    let _ = std::fs::remove_file(&jdist);
}
