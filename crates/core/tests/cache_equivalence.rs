//! Golden-outcome equivalence: the decoded-instruction cache (and the
//! dirty-page restore it rides with) must not change a single campaign
//! result. A full small campaign with the cache off is the reference;
//! with the cache on — at any worker count — every record and every
//! metric except the cache's own counters must be bit-identical.

use kfi_core::{Experiment, ExperimentConfig};
use kfi_injector::{Campaign, RigConfig};
use kfi_profiler::ProfilerConfig;
use kfi_trace::Metrics;

fn campaign(decode_cache: bool, threads: usize) -> (Vec<kfi_injector::RunRecord>, Metrics) {
    let exp = Experiment::prepare(ExperimentConfig {
        seed: 11,
        max_per_function: Some(2),
        threads,
        profiler: ProfilerConfig { period: 997, budget: 200_000_000 },
        rig: RigConfig { decode_cache, ..Default::default() },
        ..Default::default()
    })
    .expect("prepare");
    let r = exp.run_campaign(Campaign::A);
    (r.records, r.metrics)
}

/// Zeroes the counters that are *about* the cache itself — the only
/// fields allowed to differ between cached and uncached execution.
/// Turning the decode cache off also disables the block engine (blocks
/// validate against decode-cache entries), so the block counters go
/// from nonzero to zero with it and are masked the same way.
fn without_cache_counters(m: &Metrics) -> Metrics {
    let mut m = m.clone();
    m.decode_hits = 0;
    m.decode_misses = 0;
    m.decode_invalidations = 0;
    m.block_hits = 0;
    m.block_misses = 0;
    m.block_invalidations = 0;
    m.block_chain_links = 0;
    m.block_chain_follows = 0;
    m.block_chain_breaks = 0;
    m
}

#[test]
fn cached_campaign_is_bit_identical_to_uncached() {
    let (rec_off, met_off) = campaign(false, 1);
    assert_eq!(met_off.decode_hits, 0, "disabled cache must count nothing");
    assert_eq!(met_off.decode_misses, 0);
    assert!(met_off.runs > 0);

    for threads in [1, 2] {
        let (rec_on, met_on) = campaign(true, threads);
        assert_eq!(rec_off, rec_on, "records diverged with cache on ({threads} threads)");
        assert!(met_on.decode_hits > 0, "the cache must actually be exercised");
        assert!(met_on.block_hits > 0, "the block engine must actually be exercised");
        assert!(met_on.block_chain_follows > 0, "chaining must actually be exercised");
        assert_eq!(met_off.block_hits, 0, "no decode cache implies no block engine");
        assert_eq!(met_off.block_chain_links, 0, "no block engine implies no chaining");
        assert_eq!(
            without_cache_counters(&met_off),
            without_cache_counters(&met_on),
            "metrics diverged with cache on ({threads} threads)"
        );
    }
}
