//! Journal torn-tail recovery, fuzzed: truncate or bit-flip the
//! journal at arbitrary byte offsets and assert resume either rejects
//! the damage via CRC (header gone) or resumes from a strict prefix of
//! the original entries — never a corrupted record — and that
//! re-appending the missing entries reproduces the undamaged file
//! byte-for-byte.

use kfi_core::journal::{read_journal, resume, Journal, JournalEntry};
use kfi_injector::{Campaign, InjectionTarget, Outcome, RunRecord};
use kfi_trace::Metrics;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const SEED: u64 = 4242;

fn entry(index: usize) -> JournalEntry {
    let mut metrics = Metrics::default();
    metrics.runs = 1;
    metrics.instructions = 5_000 + index as u64;
    metrics.wire_bytes_streamed = index as u64 * 17;
    metrics.run_cycles.record(1_000 + index as u64);
    JournalEntry {
        campaign: ['A', 'B', 'C'][index % 3],
        index,
        record: RunRecord {
            target: InjectionTarget {
                campaign: [Campaign::A, Campaign::B, Campaign::C][index % 3],
                function: format!("fn_{index}"),
                subsystem: if index % 2 == 0 { "fs".into() } else { "net".into() },
                insn_addr: 0xc010_0000 + index as u32 * 7,
                insn_len: 1 + (index % 6) as u8,
                byte_index: index % 6,
                bit_mask: 1 << (index % 8),
                is_branch: index % 5 == 0,
            },
            mode: (index % 3) as u32,
            outcome: if index % 4 == 0 { Outcome::NotActivated } else { Outcome::NotManifested },
            activation_tsc: Some(10_000 + index as u64),
            run_cycles: 50_000 + index as u64,
            sanitizer_violations: 0,
        },
        metrics,
    }
}

static UNIQ: AtomicU64 = AtomicU64::new(0);

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("kfi-journal-torn-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}-{}-{}", std::process::id(), UNIQ.fetch_add(1, Ordering::Relaxed)))
}

/// Writes a journal of `n` entries and returns its bytes.
fn build(path: &PathBuf, n: usize) -> Vec<u8> {
    let mut j = Journal::create(path, SEED).unwrap();
    for i in 0..n {
        j.append(&entry(i)).unwrap();
    }
    j.sync().unwrap();
    drop(j);
    std::fs::read(path).unwrap()
}

/// The shared postcondition: after damaging a journal, resume must
/// yield an exact prefix of the original entries (or reject the file
/// outright), and re-appending the missing suffix must reproduce the
/// pristine bytes exactly.
fn check_damage(path: &PathBuf, pristine: &[u8], n: usize) -> Result<(), String> {
    match resume(path, SEED) {
        Err(_) => {
            // Damage reached the magic/header: the whole file is
            // rejected, nothing is replayed. A correct, if total,
            // refusal.
        }
        Ok((entries, mut j)) => {
            prop_assert!(entries.len() <= n, "resume invented entries");
            for (i, e) in entries.iter().enumerate() {
                prop_assert_eq!(e, &entry(i), "resume replayed a corrupted record at {}", i);
            }
            // Re-run the "lost" suffix: the rewritten journal must be
            // byte-identical to one that was never damaged.
            for i in entries.len()..n {
                j.append(&entry(i)).map_err(|e| e.to_string())?;
            }
            j.sync().map_err(|e| e.to_string())?;
            drop(j);
            let healed = std::fs::read(path).map_err(|e| e.to_string())?;
            prop_assert_eq!(
                healed,
                pristine.to_vec(),
                "healed journal differs from the undamaged one"
            );
            let back = read_journal(path, SEED).map_err(|e| e.to_string())?;
            prop_assert_eq!(back.len(), n);
        }
    }
    let _ = std::fs::remove_file(path);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Truncation at any byte offset: resume keeps an exact prefix and
    /// healing reproduces the pristine bytes.
    #[test]
    fn truncation_at_any_offset_resumes_prefix(
        n in 1usize..24,
        cut_sel in any::<u32>(),
    ) {
        let path = tmp("trunc");
        let pristine = build(&path, n);
        let cut = cut_sel as usize % pristine.len();
        std::fs::write(&path, &pristine[..cut]).unwrap();
        check_damage(&path, &pristine, n)?;
    }

    /// A bit flip at any byte offset: the CRC (or the header check)
    /// fences the damage; everything before it replays identically.
    #[test]
    fn bitflip_at_any_offset_never_replays_corruption(
        n in 1usize..24,
        hit_sel in any::<u32>(),
        bit in 0u8..8,
    ) {
        let path = tmp("flip");
        let pristine = build(&path, n);
        let mut bad = pristine.clone();
        let hit = hit_sel as usize % bad.len();
        bad[hit] ^= 1 << bit;
        std::fs::write(&path, &bad).unwrap();
        check_damage(&path, &pristine, n)?;
    }

    /// Truncation *and* a flip inside the surviving prefix — compound
    /// damage, same guarantee.
    #[test]
    fn compound_damage_still_fenced(
        n in 2usize..24,
        cut_sel in any::<u32>(),
        hit_sel in any::<u32>(),
        bit in 0u8..8,
    ) {
        let path = tmp("both");
        let pristine = build(&path, n);
        let cut = 1 + cut_sel as usize % (pristine.len() - 1);
        let mut bad = pristine[..cut].to_vec();
        let hit = hit_sel as usize % bad.len();
        bad[hit] ^= 1 << bit;
        std::fs::write(&path, &bad).unwrap();
        check_damage(&path, &pristine, n)?;
    }
}
