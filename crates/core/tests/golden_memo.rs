//! Golden-run memoization equivalence: a campaign whose workers fork
//! one shared post-boot snapshot and share one memoized set of golden
//! runs ([`ExperimentConfig::memoize`], the default) must be
//! bit-identical — records, metrics, CSV dataset, journal bytes — to
//! the recompute-per-rig reference path, at any worker count and
//! through the supervisor's retry-on-fresh-rig machinery.

use kfi_core::supervisor::{run_campaign_supervised, PanicInjection, SupervisorConfig};
use kfi_core::{CampaignResult, Experiment, ExperimentConfig, RecordRow};
use kfi_injector::Campaign;
use kfi_profiler::ProfilerConfig;
use std::collections::BTreeSet;
use std::path::PathBuf;

fn experiment(memoize: bool, threads: usize) -> Experiment {
    Experiment::prepare(ExperimentConfig {
        seed: 11,
        max_per_function: Some(2),
        threads,
        memoize,
        profiler: ProfilerConfig { period: 997, budget: 200_000_000 },
        ..Default::default()
    })
    .expect("prepare")
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("kfi-golden-memo-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}-{}", std::process::id()))
}

/// The full downstream dataset of a campaign: record CSV + metrics CSV.
fn csv_of(result: &CampaignResult) -> (String, String) {
    let rows: Vec<RecordRow> = result.records.iter().map(RecordRow::from_record).collect();
    (kfi_core::to_csv(&rows), kfi_core::metrics_to_csv([('A', &result.metrics)]))
}

#[test]
fn memoized_campaign_is_bit_identical_to_recompute_per_rig() {
    let reference = experiment(false, 1);
    let base = reference.run_campaign(Campaign::A);
    assert_eq!(
        reference.golden_captures(),
        None,
        "the recompute path must never touch the shared base"
    );
    let (base_csv, base_metrics_csv) = csv_of(&base);
    assert!(base.metrics.runs > 0);

    for threads in [1, 2, 4] {
        let exp = experiment(true, threads);
        let got = exp.run_campaign(Campaign::A);
        assert_eq!(got.records, base.records, "records diverged ({threads} workers, memoized)");
        assert_eq!(got.metrics, base.metrics, "metrics diverged ({threads} workers, memoized)");
        let (csv, metrics_csv) = csv_of(&got);
        assert_eq!(csv, base_csv, "record CSV diverged ({threads} workers, memoized)");
        assert_eq!(metrics_csv, base_metrics_csv, "metrics CSV diverged ({threads} workers)");
        // Exactly one golden capture per workload mode, campaign-wide,
        // no matter how many workers forked the base.
        assert_eq!(
            exp.golden_captures(),
            Some(kfi_workloads::WORKLOADS.len() as u64),
            "golden store captured more than once per mode ({threads} workers)"
        );
    }
}

#[test]
fn retried_runs_get_fresh_uncontaminated_forks() {
    let exp = experiment(true, 2);
    let base = exp.run_campaign(Campaign::A);

    // Panic the first attempt of a few jobs: the supervisor retries
    // each on a fresh rig, which under memoization is a new fork of the
    // same shared base — it must reproduce the healthy record exactly.
    let panicking: BTreeSet<usize> = [0usize, 3, 7].into_iter().collect();
    let cfg = SupervisorConfig {
        inject_panic: PanicInjection::Transient(panicking.clone()),
        ..SupervisorConfig::default()
    };
    let out = run_campaign_supervised(&exp, Campaign::A, &cfg).expect("supervised");
    assert_eq!(out.result.records, base.records, "retried forks diverged from healthy runs");
    assert_eq!(out.result.metrics.rig_panics, panicking.len() as u64);
    assert_eq!(out.result.metrics.run_retries, panicking.len() as u64);
    let mut cleaned = out.result.metrics.clone();
    cleaned.rig_panics = 0;
    cleaned.run_retries = 0;
    assert_eq!(cleaned, base.metrics);
    // Replacement forks reuse the memoized goldens: still one capture
    // per mode after the whole panic-and-retry storm.
    assert_eq!(exp.golden_captures(), Some(kfi_workloads::WORKLOADS.len() as u64));
}

#[test]
fn journal_bytes_are_identical_with_and_without_memoization() {
    let journal = tmp("journal");

    let run = |memoize: bool, threads: usize| -> (CampaignResult, Vec<u8>) {
        let _ = std::fs::remove_file(&journal);
        let exp = experiment(memoize, threads);
        let cfg =
            SupervisorConfig { journal: Some(journal.clone()), ..SupervisorConfig::default() };
        let out = run_campaign_supervised(&exp, Campaign::A, &cfg).expect("journaled run");
        (out.result, std::fs::read(&journal).expect("journal written"))
    };

    let (base, base_bytes) = run(false, 1);
    for threads in [1, 2, 4] {
        let (got, bytes) = run(true, threads);
        assert_eq!(got.records, base.records);
        assert_eq!(
            bytes, base_bytes,
            "journal bytes diverged under memoization ({threads} workers)"
        );
    }

    // Resume identity: with the journal complete, a memoized resumed
    // run at any worker count re-runs nothing and leaves the journal
    // bytes untouched.
    for threads in [1, 4] {
        let exp = experiment(true, threads);
        let cfg = SupervisorConfig {
            journal: Some(journal.clone()),
            resume: true,
            ..SupervisorConfig::default()
        };
        let resumed = run_campaign_supervised(&exp, Campaign::A, &cfg).expect("resumed run");
        assert_eq!(resumed.report.resumed_runs, base.records.len());
        assert_eq!(resumed.result.records, base.records);
        assert_eq!(
            std::fs::read(&journal).expect("journal readable"),
            base_bytes,
            "resume rewrote the journal ({threads} workers)"
        );
    }
    let _ = std::fs::remove_file(&journal);
}
