//! The supervisor's retry policy re-executes a poisoned or panicked
//! run on a *fresh* rig and keeps only the final attempt. That is only
//! sound if a run is a pure function of its target and workload mode:
//! this property test pins down that an arbitrary planned injection
//! produces a bit-identical record and metrics delta on a rig that has
//! already executed many other runs and on a freshly built one.

use kfi_core::{Experiment, ExperimentConfig};
use kfi_injector::{Campaign, InjectorRig};
use kfi_profiler::ProfilerConfig;
use proptest::prelude::*;
use std::sync::{Mutex, OnceLock};

static EXP: OnceLock<Experiment> = OnceLock::new();
static DIRTY: OnceLock<Mutex<InjectorRig>> = OnceLock::new();

fn exp() -> &'static Experiment {
    EXP.get_or_init(|| {
        Experiment::prepare(ExperimentConfig {
            seed: 11,
            max_per_function: Some(2),
            threads: 1,
            profiler: ProfilerConfig { period: 997, budget: 200_000_000 },
            ..Default::default()
        })
        .expect("prepare")
    })
}

fn dirty_rig() -> &'static Mutex<InjectorRig> {
    DIRTY.get_or_init(|| Mutex::new(exp().make_rig().expect("rig boots")))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    #[test]
    fn retry_on_a_fresh_rig_is_bit_identical(pick in 0usize..1024) {
        let exp = exp();
        let plan = exp.plan(Campaign::A);
        let t = &plan[pick % plan.len()];
        let mode = exp.mode_for(t);

        // The long-lived rig has run whatever earlier cases threw at
        // it — exactly the state a worker's rig is in when a retryable
        // failure strikes some unrelated later job.
        let mut dirty = dirty_rig().lock().expect("rig lock");
        let _ = dirty.take_metrics();
        let r_dirty = dirty.run_one(t, mode);
        let d_dirty = dirty.take_metrics();
        drop(dirty);

        // The retry path: same job, brand-new rig.
        let mut fresh = exp.make_rig().expect("fresh rig boots");
        let _ = fresh.take_metrics();
        let r_fresh = fresh.run_one(t, mode);
        let d_fresh = fresh.take_metrics();

        prop_assert_eq!(&r_dirty, &r_fresh);
        prop_assert_eq!(d_dirty, d_fresh);
    }
}
