//! `cpus = 2` campaign determinism: an injection campaign against the
//! SMP kernel on a two-CPU machine is bit-identical across host worker
//! counts and across a torn-journal resume. The guest interleaving is
//! a pure function of `(smp_seed, smp_quantum)` — the host scheduler
//! never enters it — so adding a second guest CPU must not cost any of
//! the reproducibility guarantees the uniprocessor campaigns have.

use kfi_core::supervisor::{run_campaign_supervised, SupervisorConfig};
use kfi_core::{Experiment, ExperimentConfig};
use kfi_injector::{Campaign, RigConfig};
use kfi_kernel::KernelBuildOptions;
use kfi_profiler::ProfilerConfig;
use std::path::PathBuf;

fn smp_experiment(threads: usize) -> Experiment {
    Experiment::prepare(ExperimentConfig {
        seed: 23,
        max_per_function: Some(1),
        threads,
        kernel: KernelBuildOptions { smp: true, ..KernelBuildOptions::default() },
        rig: RigConfig { cpus: 2, ..RigConfig::default() },
        profiler: ProfilerConfig { period: 997, budget: 200_000_000 },
        ..Default::default()
    })
    .expect("prepare")
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("kfi-smp-campaign-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}-{}", std::process::id()))
}

#[test]
fn smp_campaign_is_bit_identical_across_workers_and_resume() {
    let exp = smp_experiment(1);

    // Anti-vacuity: the rig really is a two-CPU machine whose second
    // CPU was brought online by the SMP kernel's startup IPI during
    // boot (a parked AP would make every assertion below trivially
    // true of a uniprocessor).
    {
        let mut rig = exp.make_rig().expect("smp rig boots");
        let m = rig.machine_mut();
        assert_eq!(m.cpus(), 2, "rig must be a two-CPU machine");
        assert!(m.cpu_state(1).tsc > 0, "the AP must have executed during boot");
    }

    // One worker, journaled: the reference dataset.
    let journal = tmp("journal");
    let _ = std::fs::remove_file(&journal);
    let cfg1 = SupervisorConfig { journal: Some(journal.clone()), ..SupervisorConfig::default() };
    let one = run_campaign_supervised(&exp, Campaign::A, &cfg1).expect("1-worker run");
    assert!(!one.result.records.is_empty());

    // 2 and 4 workers (batched claim/report path): bit-identical
    // records and merged metrics.
    for threads in [2usize, 4] {
        let e = exp.with_threads(threads);
        let out = run_campaign_supervised(&e, Campaign::A, &SupervisorConfig::default())
            .unwrap_or_else(|e| panic!("{threads}-worker run: {e}"));
        assert_eq!(out.result.records, one.result.records, "{threads} workers diverged");
        assert_eq!(out.result.metrics, one.result.metrics, "{threads}-worker metrics diverged");
    }

    // Tear the journal tail (the SIGKILL aftermath) and resume with a
    // different worker count: same dataset, some runs replayed free.
    let bytes = std::fs::read(&journal).unwrap();
    std::fs::write(&journal, &bytes[..bytes.len() - 11]).unwrap();
    let cfg2 = SupervisorConfig {
        journal: Some(journal.clone()),
        resume: true,
        ..SupervisorConfig::default()
    };
    let resumed =
        run_campaign_supervised(&exp.with_threads(2), Campaign::A, &cfg2).expect("resumed run");
    assert!(resumed.report.resumed_runs > 0, "resume must replay journaled runs");
    assert!(
        resumed.report.resumed_runs < one.result.records.len(),
        "the torn tail must force at least one re-run"
    );
    assert_eq!(resumed.result.records, one.result.records);
    assert_eq!(resumed.result.metrics, one.result.metrics);
    let _ = std::fs::remove_file(&journal);
}
