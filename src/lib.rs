//! # kfi — Characterization of Linux Kernel Behavior under Errors
//!
//! A full reproduction of Gu, Kalbarczyk, Iyer & Yang, *Characterization
//! of Linux Kernel Behavior under Errors* (DSN 2003), as a Rust library:
//! a simulated IA-32 machine, a miniature Unix kernel written in its
//! assembly, a UnixBench-analog workload suite, and a debug-register-
//! triggered single-bit fault injector with the paper's outcome
//! classification, crash-cause/latency/propagation/severity analyses.
//!
//! This crate re-exports the whole workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`isa`] | IA-32 subset: decoder, encoder, condition codes |
//! | [`machine`] | CPU + MMU + traps + devices + debug registers |
//! | [`asm`] | AT&T assembler / disassembler |
//! | [`kernel`] | the guest kernel, boot, mkfs/fsck, KBIN loader |
//! | [`workloads`] | the eight benchmark programs + init/runner |
//! | [`profiler`] | Kernprof-equivalent PC-sampling profiler |
//! | [`injector`] | campaigns A/B/C, the rig, outcome classification |
//! | [`dump`] | crash dumps, oops capture, case-study listings |
//! | [`core`] | experiment orchestration + statistics |
//! | [`report`] | table/figure renderers |
//!
//! # Examples
//!
//! Boot the kernel and run the benchmark suite:
//!
//! ```no_run
//! use kfi::kernel::{boot, build_kernel, mkfs, BootConfig};
//!
//! let image = build_kernel(Default::default())?;
//! let files = kfi::workloads::suite_files()?;
//! let fsimg = mkfs(2048, &files);
//! let mut m = boot(&image, fsimg.disk, &BootConfig::default());
//! m.run(200_000_000);
//! println!("{}", m.console_string());
//! # Ok::<(), kfi::asm::AsmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use kfi_asm as asm;
pub use kfi_core as core;
pub use kfi_dump as dump;
pub use kfi_injector as injector;
pub use kfi_isa as isa;
pub use kfi_kernel as kernel;
pub use kfi_machine as machine;
pub use kfi_profiler as profiler;
pub use kfi_report as report;
pub use kfi_workloads as workloads;
