//! The `kfi` command-line tool: boot the guest system, run workloads,
//! inject errors, and regenerate the paper's artifacts.

use kfi::injector::{plan_function, Campaign, InjectorRig, Outcome, RigConfig};
use kfi::kernel::{boot, build_kernel, mkfs, BootConfig, KernelBuildOptions};
use rand::SeedableRng;

const USAGE: &str = "\
kfi — Characterization of Linux Kernel Behavior under Errors (DSN 2003)

USAGE:
    kfi boot [--mode N|all]        boot the kernel, run workloads, show console
    kfi profile                    profile the kernel (Table 1 data)
    kfi inject <function> [opts]   inject errors into a kernel function
        --campaign A|B|C           error model (default A)
        --mode N                   workload (default: hottest for the function)
        --count N                  max injections (default 20)
        --seed N                   RNG seed (default 2003)
    kfi disasm <function>          disassemble a kernel function
    kfi report [--cap N|--full]    run the study and print all tables/figures
    kfi help                       this text
";

fn arg_val(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("boot") => cmd_boot(&args),
        Some("profile") => cmd_profile(),
        Some("inject") => cmd_inject(&args),
        Some("disasm") => cmd_disasm(&args),
        Some("report") => cmd_report(&args),
        _ => print!("{USAGE}"),
    }
}

fn cmd_boot(args: &[String]) {
    let mode = match arg_val(args, "--mode").as_deref() {
        None | Some("all") => kfi::workloads::MODE_ALL,
        Some(n) => n.parse().unwrap_or(kfi::workloads::MODE_ALL),
    };
    let image = build_kernel(KernelBuildOptions::default()).expect("kernel assembles");
    let files = kfi::workloads::suite_files().expect("workloads assemble");
    let fsimg = mkfs(2048, &files);
    let mut m = boot(&image, fsimg.disk, &BootConfig { run_mode: mode, ..Default::default() });
    let exit = m.run(400_000_000);
    print!("{}", m.console_string());
    println!("-- exit: {exit:?} after {} cycles", m.cpu.tsc);
}

fn cmd_profile() {
    let image = build_kernel(KernelBuildOptions::default()).expect("kernel assembles");
    let files = kfi::workloads::suite_files().expect("workloads assemble");
    let p = kfi::profiler::profile(&image, &files, kfi::workloads::WORKLOADS, &Default::default());
    println!("{}", kfi::report::table1(&p, 0.95));
}

fn cmd_inject(args: &[String]) {
    let Some(function) = args.get(1).filter(|a| !a.starts_with("--")) else {
        eprintln!("inject: missing function name");
        return;
    };
    let campaign = match arg_val(args, "--campaign").as_deref() {
        Some("B") | Some("b") => Campaign::B,
        Some("C") | Some("c") => Campaign::C,
        _ => Campaign::A,
    };
    let count: usize = arg_val(args, "--count").and_then(|v| v.parse().ok()).unwrap_or(20);
    let seed: u64 = arg_val(args, "--seed").and_then(|v| v.parse().ok()).unwrap_or(2003);

    let image = build_kernel(KernelBuildOptions::default()).expect("kernel assembles");
    if image.program.symbols.lookup(function).is_none() {
        eprintln!("inject: unknown kernel function `{function}`");
        return;
    }
    let files = kfi::workloads::suite_files().expect("workloads assemble");
    eprintln!("booting + golden runs...");
    let mut rig = InjectorRig::new(
        image,
        &files,
        kfi::workloads::WORKLOADS.len() as u32,
        RigConfig::default(),
    )
    .expect("baseline system is healthy");

    // Pick the workload covering the function, preferring the first.
    let faddr = rig.image.program.symbols.addr_of(function).expect("checked");
    let mode = arg_val(args, "--mode")
        .and_then(|v| v.parse().ok())
        .or_else(|| {
            (0..kfi::workloads::WORKLOADS.len() as u32).find(|m| rig.would_activate(faddr, *m))
        })
        .unwrap_or(0);
    println!(
        "injecting campaign {} into {function} under workload {}",
        campaign.letter(),
        kfi::workloads::WORKLOADS[mode as usize]
    );

    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let targets = plan_function(&rig.image, function, campaign, &mut rng);
    for t in targets.iter().take(count) {
        let rec = rig.run_one(t, mode);
        print!(
            "{:#010x} byte {} mask {:#04x}: {}",
            t.insn_addr,
            t.byte_index,
            t.bit_mask,
            rec.outcome.category()
        );
        if let Outcome::Crash(i) = &rec.outcome {
            print!(
                " [{} in {} ({}), latency {}, {}]",
                kfi::kernel::layout::cause_name(i.cause),
                i.function.as_deref().unwrap_or("?"),
                i.subsystem,
                i.latency,
                i.severity.name()
            );
        }
        println!();
    }
}

fn cmd_disasm(args: &[String]) {
    let Some(function) = args.get(1) else {
        eprintln!("disasm: missing function name");
        return;
    };
    let image = build_kernel(KernelBuildOptions::default()).expect("kernel assembles");
    let Some(sym) = image.program.symbols.lookup(function) else {
        eprintln!("disasm: unknown function `{function}`");
        return;
    };
    let bytes = image.program.slice_at(sym.value, sym.size as usize).expect("function bytes");
    println!(
        "{} ({}), {} bytes at {:#010x}:",
        sym.name,
        sym.subsystem.as_deref().unwrap_or("?"),
        sym.size,
        sym.value
    );
    print!("{}", kfi::asm::format_listing(&kfi::asm::disassemble(bytes, sym.value)));
}

fn cmd_report(args: &[String]) {
    let cap = if args.iter().any(|a| a == "--full") {
        None
    } else {
        Some(arg_val(args, "--cap").and_then(|v| v.parse().ok()).unwrap_or(12))
    };
    let config = kfi::core::ExperimentConfig { max_per_function: cap, ..Default::default() };
    let exp = kfi::core::Experiment::prepare(config).expect("experiment prepares");
    let study = exp.run_all();
    println!(
        "{}",
        kfi::report::full_report(&exp.image, &exp.profile, &study, exp.config.top_fraction)
    );
}
