//! Offline stand-in for the `rand` crate.
//!
//! The workspace builds in an air-gapped environment with no crates.io
//! mirror, so this crate provides the (small) subset of the `rand 0.8`
//! API the reproduction actually uses: [`rngs::StdRng`], seeded via
//! [`SeedableRng::seed_from_u64`], drawing values with
//! [`Rng::gen_range`]. The generator is xoshiro256** seeded through
//! SplitMix64 — a different stream than the real `StdRng` (ChaCha12),
//! but every property the experiments rely on holds: deterministic for
//! a fixed seed, platform-independent, and statistically unbiased for
//! range sampling.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Types that can be sampled uniformly from a [`Range`].
pub trait SampleUniform: Copy {
    /// Draws one value in `range` (half-open) from `rng`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "empty gen_range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // Debiased multiply-shift (Lemire): uniform over `span`.
                let mut x = rng.next_u64() as u128;
                let mut m = x.wrapping_mul(span);
                let mut lo = m as u64 as u128;
                if lo < span {
                    let t = (u64::MAX as u128 + 1 - span) % span;
                    while lo < t {
                        x = rng.next_u64() as u128;
                        m = x.wrapping_mul(span);
                        lo = m as u64 as u128;
                    }
                }
                let off = (m >> 64) as i128;
                (range.start as i128 + off) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing random-value interface (subset of `rand::Rng`).
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// A uniformly random `bool`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 / ((1u64 << 53) as f64) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of RNGs from seeds (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic 64-bit generator (xoshiro256** under the hood).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(2003);
        let mut b = StdRng::seed_from_u64(2003);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_in_bounds_and_covers() {
        let mut r = StdRng::seed_from_u64(7);
        let mut seen = [false; 8];
        for _ in 0..400 {
            let v: usize = r.gen_range(0..8);
            assert!(v < 8);
            seen[v] = true;
        }
        assert!(seen.iter().all(|s| *s), "all 8 values hit: {seen:?}");
        for _ in 0..100 {
            let v = r.gen_range(10u32..11);
            assert_eq!(v, 10);
        }
    }

    #[test]
    fn works_through_mut_ref() {
        fn take<R: Rng>(rng: &mut R) -> u64 {
            rng.gen_range(0u64..1000)
        }
        let mut r = StdRng::seed_from_u64(9);
        let _ = take(&mut r);
    }
}
