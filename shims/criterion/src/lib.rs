//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so this crate provides
//! a small, honest wall-clock benchmark harness with criterion's API
//! shape: [`criterion_group!`]/[`criterion_main!`], `bench_function`,
//! benchmark groups with `sample_size`/`throughput`, and [`black_box`].
//!
//! Measurement model: each benchmark is warmed up for ~3 iterations or
//! 0.5 s (whichever first), then timed for `sample_size` samples; the
//! report prints mean and min time per iteration plus elements/second
//! when a [`Throughput`] was set. Passing `--test` (what `cargo test
//! --benches` does) runs each closure exactly once without timing, like
//! real criterion's test mode. Passing `--save-baseline NAME` /
//! `--baseline NAME` stores / compares mean ns-per-iter under
//! `target/shim-criterion/` so before/after comparisons work offline.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher<'a> {
    mode: Mode,
    samples: &'a mut Vec<Duration>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Mode {
    Measure { sample_size: usize },
    TestOnce,
}

impl Bencher<'_> {
    /// Runs `f` under the timing loop.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        match self.mode {
            Mode::TestOnce => {
                black_box(f());
            }
            Mode::Measure { sample_size } => {
                // Warmup: at least 3 iters, stop early after 500 ms.
                let warm_start = Instant::now();
                for _ in 0..3 {
                    black_box(f());
                    if warm_start.elapsed() > Duration::from_millis(500) {
                        break;
                    }
                }
                for _ in 0..sample_size {
                    let t0 = Instant::now();
                    black_box(f());
                    self.samples.push(t0.elapsed());
                }
            }
        }
    }
}

/// The benchmark driver (subset of `criterion::Criterion`).
pub struct Criterion {
    test_mode: bool,
    save_baseline: Option<String>,
    compare_baseline: Option<String>,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let args: Vec<String> = std::env::args().collect();
        let flag_value =
            |name: &str| args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned();
        let mut filter = None;
        let mut i = 1;
        while i < args.len() {
            let a = &args[i];
            if a == "--save-baseline" || a == "--baseline" {
                i += 2;
                continue;
            }
            if !a.starts_with('-') {
                filter = Some(a.clone());
                break;
            }
            i += 1;
        }
        Criterion {
            test_mode: args.iter().any(|a| a == "--test"),
            save_baseline: flag_value("--save-baseline"),
            compare_baseline: flag_value("--baseline"),
            filter,
        }
    }
}

impl Criterion {
    /// Mirrors real criterion's builder hook; a no-op here.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Criterion {
        run_bench(self, id, None, 20, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: 20,
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing settings (subset of criterion's).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f` under `group/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let (sample_size, throughput) = (self.sample_size, self.throughput);
        run_bench(self.criterion, &full, throughput, sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn baseline_path(name: &str, id: &str) -> std::path::PathBuf {
    let sanitized: String =
        id.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect();
    std::path::Path::new("target").join("shim-criterion").join(name).join(format!("{sanitized}.ns"))
}

fn run_bench<F: FnMut(&mut Bencher)>(
    c: &mut Criterion,
    id: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    mut f: F,
) {
    if let Some(filter) = &c.filter {
        if !id.contains(filter.as_str()) {
            return;
        }
    }
    let mut samples = Vec::new();
    let mode = if c.test_mode { Mode::TestOnce } else { Mode::Measure { sample_size } };
    let mut b = Bencher { mode, samples: &mut samples };
    f(&mut b);
    if c.test_mode {
        println!("{id}: test mode, ran once");
        return;
    }
    if samples.is_empty() {
        println!("{id}: no samples (closure never called iter)");
        return;
    }
    let ns: Vec<f64> = samples.iter().map(|d| d.as_nanos() as f64).collect();
    let mean = ns.iter().sum::<f64>() / ns.len() as f64;
    let min = ns.iter().cloned().fold(f64::INFINITY, f64::min);
    let human = |x: f64| {
        if x >= 1e9 {
            format!("{:.3} s", x / 1e9)
        } else if x >= 1e6 {
            format!("{:.3} ms", x / 1e6)
        } else if x >= 1e3 {
            format!("{:.3} µs", x / 1e3)
        } else {
            format!("{x:.1} ns")
        }
    };
    let mut line =
        format!("{id}: mean {} / min {} per iter ({} samples)", human(mean), human(min), ns.len());
    match throughput {
        Some(Throughput::Elements(n)) => {
            line.push_str(&format!(", {:.1} Melem/s", n as f64 / mean * 1e3));
        }
        Some(Throughput::Bytes(n)) => {
            line.push_str(&format!(", {:.1} MiB/s", n as f64 / mean * 1e9 / (1 << 20) as f64));
        }
        None => {}
    }
    if let Some(base) = &c.compare_baseline {
        if let Ok(prev) = std::fs::read_to_string(baseline_path(base, id)) {
            if let Ok(prev) = prev.trim().parse::<f64>() {
                let delta = (mean - prev) / prev * 100.0;
                line.push_str(&format!(", {delta:+.2}% vs baseline '{base}'"));
            }
        }
    }
    println!("{line}");
    if let Some(base) = &c.save_baseline {
        let path = baseline_path(base, id);
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        let _ = std::fs::write(&path, format!("{mean}\n"));
    }
}

/// Declares a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut c = Criterion {
            test_mode: false,
            save_baseline: None,
            compare_baseline: None,
            filter: None,
        };
        let mut calls = 0u64;
        let mut g = c.benchmark_group("g");
        g.sample_size(5).throughput(Throughput::Elements(10));
        g.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        g.finish();
        // 3 warmup + 5 samples.
        assert_eq!(calls, 8);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion {
            test_mode: true,
            save_baseline: None,
            compare_baseline: None,
            filter: None,
        };
        let mut calls = 0u64;
        c.bench_function("once", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
    }
}
