//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate
//! reimplements the slice of proptest the workspace's property tests
//! use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//! * [`any`]`::<T>()` for integers and `bool`,
//! * half-open ranges as strategies (`0usize..200`),
//! * tuples of strategies, [`collection::vec`], `prop_map`,
//! * `&str` character-class patterns of the shape `[a-z]{m,n}`.
//!
//! Differences from real proptest, on purpose: no shrinking (a failure
//! reports the deterministic case index instead), and generation uses a
//! fixed internal seed so failures are exactly reproducible run-to-run
//! — the same property the rest of this repository guarantees for its
//! experiments.

#![forbid(unsafe_code)]

/// Per-test configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Real proptest defaults to 256; that is also affordable here.
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic generation state handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// RNG for one case of one property. The function name keeps
    /// different properties on different streams.
    pub fn for_case(name: &str, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut sm = h;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng { s: [next(), next(), next(), next()] }
    }

    /// Next raw 64 random bits (xoshiro256**).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`; `bound > 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        let span = bound as u128;
        let mut m = (self.next_u64() as u128).wrapping_mul(span);
        if (m as u64 as u128) < span {
            let t = (u64::MAX as u128 + 1 - span) % span;
            while (m as u64 as u128) < t {
                m = (self.next_u64() as u128).wrapping_mul(span);
            }
        }
        (m >> 64) as u64
    }
}

/// A value generator (subset of `proptest::strategy::Strategy`).
pub trait Strategy {
    /// Type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;
    /// The full-range strategy for the type.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (subset of `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-range strategy for a primitive (returned by [`any`]).
#[derive(Debug, Clone, Copy)]
pub struct AnyPrim<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrim<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrim<$t>;
            fn arbitrary() -> AnyPrim<$t> {
                AnyPrim(std::marker::PhantomData)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrim<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrim<bool>;
    fn arbitrary() -> AnyPrim<bool> {
        AnyPrim(std::marker::PhantomData)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);

/// `&str` patterns of the shape `[a-z]{m,n}` (plus plain literals):
/// the only regex forms the workspace's tests use.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let s = *self;
        if let Some(parsed) = parse_class_pattern(s) {
            let (lo, hi, chars) = parsed;
            let n = lo + rng.below((hi - lo + 1) as u64) as usize;
            (0..n).map(|_| chars[rng.below(chars.len() as u64) as usize]).collect()
        } else {
            s.to_string()
        }
    }
}

/// Parses `[x-y...]{m,n}` into (m, n, expanded character set).
fn parse_class_pattern(s: &str) -> Option<(usize, usize, Vec<char>)> {
    let rest = s.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class = &rest[..close];
    let counts = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match counts.split_once(',') {
        Some((a, b)) => (a.parse().ok()?, b.parse().ok()?),
        None => {
            let n = counts.parse().ok()?;
            (n, n)
        }
    };
    let mut chars = Vec::new();
    let cs: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < cs.len() {
        if i + 2 < cs.len() && cs[i + 1] == '-' {
            let (a, b) = (cs[i] as u32, cs[i + 2] as u32);
            for c in a..=b {
                chars.push(char::from_u32(c)?);
            }
            i += 3;
        } else {
            chars.push(cs[i]);
            i += 1;
        }
    }
    if chars.is_empty() || lo > hi {
        return None;
    }
    Some((lo, hi, chars))
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// `Vec` strategy over `element` with length in `len` (half-open).
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty vec length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a test usually imports.
pub mod prelude {
    pub use crate::{
        any, collection, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a `proptest!` body; on failure the case
/// fails with the stringified condition (plus optional format args).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed at {}:{}: {}",
                file!(), line!(), stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed at {}:{}: {}",
                file!(), line!(), format!($($fmt)+)
            ));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "assertion failed at {}:{}: `{} == {}`\n  left: {:?}\n right: {:?}",
                file!(), line!(), stringify!($left), stringify!($right), l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "assertion failed at {}:{}: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
                file!(), line!(), stringify!($left), stringify!($right),
                format!($($fmt)+), l, r
            ));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err(format!(
                "assertion failed at {}:{}: `{} != {}`\n  both: {:?}",
                file!(), line!(), stringify!($left), stringify!($right), l
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err(format!(
                "assertion failed at {}:{}: `{} != {}` ({})\n  both: {:?}",
                file!(), line!(), stringify!($left), stringify!($right),
                format!($($fmt)+), l
            ));
        }
    }};
}

/// Defines property tests. Grammar (matching real proptest):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))] // optional
///     #[test]
///     fn name(x in strategy, y in strategy) { body }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            for case in 0..cfg.cases {
                let mut __rng = $crate::TestRng::for_case(stringify!($name), case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let result: ::std::result::Result<(), ::std::string::String> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(msg) = result {
                    panic!(
                        "proptest {} failed at case {}/{}:\n{}",
                        stringify!($name), case, cfg.cases, msg
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn class_pattern_parses() {
        let (lo, hi, chars) = super::parse_class_pattern("[a-c]{1,8}").unwrap();
        assert_eq!((lo, hi), (1, 8));
        assert_eq!(chars, vec!['a', 'b', 'c']);
    }

    #[test]
    fn generation_is_deterministic() {
        let s = collection::vec(any::<u8>(), 1..64);
        let a = Strategy::generate(&s, &mut super::TestRng::for_case("x", 3));
        let b = Strategy::generate(&s, &mut super::TestRng::for_case("x", 3));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 10usize..20, y in 0u32..3) {
            prop_assert!(x >= 10 && x < 20);
            prop_assert!(y < 3, "y = {}", y);
        }

        #[test]
        fn vec_and_tuple_and_map(
            v in collection::vec((any::<u8>(), any::<bool>()), 2..5),
            s in "[a-z]{1,8}",
            w in collection::vec(any::<u8>(), 0..4).prop_map(|v| v.len()),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(!s.is_empty() && s.len() <= 8);
            prop_assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
            prop_assert!(w < 4);
            prop_assert_ne!(v.len(), 0);
            prop_assert_eq!(v.len(), v.len());
        }
    }
}
